"""Code generation: compile a network's forward pass to ISA programs.

This is the engine-facing half of the compiler (the paper's phase B,
Fig 13): given a sequential network and a parameterised reference model,
it emits one ScaleDeep program per CompHeavy tile, arranges the memory
image (home feature blocks, staged inputs, kernels, biases), and arms
the MEMTRACK trackers that synchronise producers with consumers.

The generated code follows the CONV-layer-FP recipe of Fig 9: each tile
convolves staged input features against its kernels, accumulating
partial outputs into the right-hand MemHeavy tile, then offloads the
activation function to the SFUs.  Every address is resolved statically
(the data flow of a DNN is known at compile time — the property the
whole synchronization scheme rests on), so loops are unrolled.

Scope: forward propagation of sequential networks without grouped
convolutions or pooling padding — enough to run the tiny zoo networks
end-to-end and validate the engine against the numpy golden model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.chip import ChipConfig
from repro.arch.presets import conv_chip
from repro.compiler.partition import (
    FeatureHome,
    StatePartition,
    partition_sequential,
)
from repro.dnn.layers import (
    Activation,
    ConvSpec,
    FCSpec,
    GlobalPoolSpec,
    LayerKind,
    PoolSpec,
)
from repro.dnn.network import LayerNode, Network
from repro.errors import MappingError
from repro.functional.reference import ReferenceModel
from repro.isa.instructions import Instruction, Opcode, make
from repro.isa.program import Program
from repro.sim.engine import ACT_CODES, Engine, RunReport, SAMP_CODES
from repro.sim.machine import Machine, pack_shape


@dataclass
class _Preload:
    """A value written into a tile at machine-build time."""

    col: int
    row: int
    addr: int
    data: np.ndarray

    def __post_init__(self) -> None:
        # Defensive copy: preloads must capture the compile-time values
        # even if the source model's arrays are mutated later.
        self.data = np.array(self.data, dtype=np.float32).reshape(-1)


@dataclass
class CompiledForward:
    """Programs plus the recipe to build a fresh machine for each run."""

    network: Network
    chip: ChipConfig
    rows: int
    partition: StatePartition
    programs: List[Program]
    preloads: List[_Preload]
    output_blocks: List[FeatureHome]

    def build_machine(self) -> Machine:
        """A fresh machine with weights/biases preloaded."""
        machine = Machine(self.chip, self.partition.mem_columns, self.rows)
        for pre in self.preloads:
            tile = machine.mem_tile(machine.mem_tile_id(pre.col, pre.row))
            tile.write(pre.addr, pre.data, accumulate=False)
        for program in self.programs:
            machine.load_program(program)
        return machine

    def run(self, image: np.ndarray) -> Tuple[np.ndarray, RunReport]:
        """Execute the forward pass on one image; returns (output vector,
        run statistics)."""
        machine = self.build_machine()
        # Write the input image into column 0's home blocks.
        in_node = self.network.input
        fsize = in_node.output_shape.feature_size
        for home in self.partition.blocks_of(in_node.name):
            tile = machine.mem_tile(machine.mem_tile_id(0, home.row))
            block = image[
                home.first_feature : home.first_feature + home.feature_count
            ]
            tile.write(home.address, block, accumulate=False)
        engine = Engine(machine)
        report = engine.run()
        out = np.concatenate([
            machine.mem_tile(
                machine.mem_tile_id(
                    self.partition.column_of[self.network.output.name],
                    home.row,
                )
            ).read(home.address, home.feature_count * home.feature_words)
            .copy()
            for home in self.output_blocks
        ])
        return out, report

    @property
    def instruction_count(self) -> int:
        return sum(len(p) for p in self.programs)

    def machine_shape(self):
        """The addressing envelope for the static verifier."""
        from repro.compiler.verifier import MachineShape

        return MachineShape(
            mem_tiles=self.partition.mem_columns * self.rows,
            words_per_tile=self.chip.mem_tile.capacity_bytes // 4,
            trackers_per_tile=self.chip.mem_tile.tracker_count,
        )

    def preloaded_regions(self):
        """(port, addr, words) regions written at machine build: the
        compiler's preloads plus the input image's home blocks."""
        regions = [
            (pre.col * self.rows + pre.row, pre.addr, pre.data.size)
            for pre in self.preloads
        ]
        for home in self.partition.blocks_of(self.network.input.name):
            regions.append((
                home.row,  # mem column 0
                home.address,
                home.feature_count * home.feature_words,
            ))
        return regions

    def verify(self, host_writes=()):
        """Run the static verifier over this compiled set (raises on
        any finding)."""
        from repro.compiler.verifier import assert_verified

        assert_verified(
            self.programs, self.machine_shape(),
            preloaded=self.preloaded_regions(), host_writes=host_writes,
        )

    def runner(self) -> "ForwardRunner":
        """A persistent-machine runner for streaming many images: the
        machine is built once, weights stay resident, and programs are
        rewound per image (the steady-state operation of Sec 3.2.3,
        minus the inter-image overlap)."""
        return ForwardRunner(self)


class ForwardRunner:
    """Streams images through one compiled forward pass."""

    def __init__(self, compiled: CompiledForward) -> None:
        self.compiled = compiled
        self.machine = compiled.build_machine()
        self.engine = Engine(self.machine)
        self.images_run = 0

    def __call__(self, image: np.ndarray) -> Tuple[np.ndarray, RunReport]:
        compiled = self.compiled
        self.machine.reset_programs()
        in_node = compiled.network.input
        for home in compiled.partition.blocks_of(in_node.name):
            tile = self.machine.mem_tile(
                self.machine.mem_tile_id(0, home.row)
            )
            tile.write(
                home.address,
                image[home.first_feature:
                      home.first_feature + home.feature_count],
                accumulate=False,
            )
        report = self.engine.run()
        out_col = compiled.partition.column_of[compiled.network.output.name]
        out = np.concatenate([
            self.machine.mem_tile(self.machine.mem_tile_id(out_col, h.row))
            .read(h.address, h.feature_count * h.feature_words).copy()
            for h in compiled.output_blocks
        ])
        self.images_run += 1
        return out, report


class ForwardCompiler:
    """Compiles FP programs for one (network, model) pair."""

    def __init__(
        self,
        net: Network,
        model: ReferenceModel,
        chip: Optional[ChipConfig] = None,
        rows: int = 2,
    ) -> None:
        if model.net is not net:
            raise MappingError("model must be built from the same network")
        self.net = net
        self.model = model
        self.chip = chip or conv_chip()
        self.rows = rows
        self.partition = partition_sequential(
            net, rows, self.chip.mem_tile.capacity_bytes // 4
        )
        self.preloads: List[_Preload] = []

    # ------------------------------------------------------------------
    def compile(self, align: bool = True) -> CompiledForward:
        """Compile the forward programs.  ``align=False`` defers prologue
        alignment to a caller that will add more programs (the training
        compiler aligns the combined set once)."""
        programs: List[Program] = []
        for node in self.net:
            if node.kind is LayerKind.INPUT:
                continue
            programs.extend(self._compile_layer(node))
        if align:
            self._align_prologues(programs)
        for program in programs:
            program.validate()
        compiled = CompiledForward(
            network=self.net,
            chip=self.chip,
            rows=self.rows,
            partition=self.partition,
            programs=programs,
            preloads=self.preloads,
            output_blocks=self.partition.blocks_of(self.net.output.name),
        )
        if align:
            # The training compiler verifies the combined set itself
            # (its error-injection region is a host write).
            compiled.verify()
        return compiled

    # ------------------------------------------------------------------
    def _port(self, col: int, row: int) -> int:
        return col * self.rows + row

    def _consumer_reads(self, node: LayerNode) -> int:
        """How many reads each of ``node``'s home blocks receives."""
        consumers = self.net.consumers(node.name)
        if not consumers:
            return 0
        consumer = self.net[consumers[0]]
        if consumer.kind in (LayerKind.CONV, LayerKind.FC):
            return len(self.partition.blocks_of(consumer.name))
        # SAMP: one NDSUBSAMP read per feature in the block — counted
        # per-block below (varies), handled by the caller.
        return -1

    def _extra_out_reads(self, node: LayerNode) -> int:
        """Additional readers of a home output block beyond the forward
        consumers (the training compiler adds the BP mask's activation
        copy)."""
        return 0

    def _conv_staging_reads(self, node: LayerNode, block_features: int) -> int:
        """Reads each staged input feature receives from a CONV layer's
        compute (one NDCONV per output feature; training adds WG)."""
        return block_features

    def _fc_staging_reads(self, node: LayerNode, block_features: int) -> int:
        """Reads of the staged FC input vector (one FP MATMUL; training
        adds one WG MATMUL per output feature)."""
        return 1

    def _compile_layer(self, node: LayerNode) -> List[Program]:
        spec = node.spec
        if isinstance(spec, ConvSpec):
            if spec.groups != 1:
                raise MappingError(
                    "engine code generation supports groups=1 convolutions"
                )
            return self._compile_conv(node)
        if isinstance(spec, (PoolSpec, GlobalPoolSpec)):
            return self._compile_pool(node)
        if isinstance(spec, FCSpec):
            return self._compile_fc(node)
        raise MappingError(
            f"cannot generate engine code for layer kind {node.kind}"
        )

    # ------------------------------------------------------------------
    def _out_tracker(
        self, prog: Program, node: LayerNode, home: FeatureHome, col: int,
        num_updates: int = 1,
    ) -> None:
        """Arm the tracker guarding a home output block."""
        reads = self._consumer_reads(node)
        if reads < 0:  # SAMP consumer reads each feature once
            reads = home.feature_count
        reads += self._extra_out_reads(node)
        prog.append(make(
            Opcode.DMA_MEMTRACK,
            addr=home.address,
            port=self._port(col, home.row),
            size=home.feature_count * home.feature_words,
            num_updates=num_updates,
            num_reads=reads,
            target=self._port(col, home.row),
            comment=f"track {node.name} outputs @r{home.row}",
        ))

    def _stage_inputs(
        self,
        prog: Program,
        body: List[Instruction],
        src: LayerNode,
        col: int,
        row: int,
        reads_per_feature: int,
        tag: str,
    ) -> Tuple[int, int]:
        """Arm + emit DMAs staging all of ``src``'s features into tile
        (col-1, row).  Returns (staging base address, feature words)."""
        src_blocks = self.partition.blocks_of(src.name)
        fwords = src.output_shape.feature_size
        total_words = src.output_shape.count * fwords
        alloc = self.partition.allocator(col - 1, row)
        base = alloc.alloc(f"{tag}/stage@r{row}", total_words)
        port = self._port(col - 1, row)
        prog.append(make(
            Opcode.MEMTRACK,
            addr=base,
            port=port,
            size=total_words,
            num_updates=len(src_blocks),
            num_reads=reads_per_feature * src.output_shape.count,
            comment=f"track staged {src.name} inputs",
        ))
        src_col = self.partition.column_of[src.name]
        for block in src_blocks:
            body.append(make(
                Opcode.DMALOAD,
                src_addr=block.address,
                src_port=self._port(src_col, block.row),
                dst_addr=base + block.first_feature * fwords,
                dst_port=port,
                size=block.feature_count * fwords,
                is_accum=0,
                comment=f"stage {src.name}[{block.first_feature}:"
                        f"{block.first_feature + block.feature_count}]",
            ))
        return base, fwords

    # ------------------------------------------------------------------
    def _compile_conv(self, node: LayerNode) -> List[Program]:
        spec = node.spec
        assert isinstance(spec, ConvSpec)
        src = self.net[node.input_names[0]]
        col = self.partition.column_of[node.name]
        in_shape = node.input_shapes[0]
        out_size = node.output_shape.feature_size
        k = spec.kernel
        weights = self.model.state[node.name].weights
        bias = self.model.state[node.name].bias
        programs = []

        for home in self.partition.blocks_of(node.name):
            row = home.row
            left = self._port(col - 1, row)
            right = self._port(col, row)
            prog = Program(tile=f"{node.name}@c{col}r{row}")
            body: List[Instruction] = []

            # Trackers (prologue).
            self._out_tracker(prog, node, home, col)
            stage_base, fwords = self._stage_inputs(
                prog, body, src, col, row,
                reads_per_feature=self._conv_staging_reads(
                    node, home.feature_count
                ),
                tag=node.name,
            )

            # Pre-activation region plus a preserved bias-broadcast
            # region: the first NDCONV per output overwrites stale data,
            # so the same programs re-run image after image.
            alloc = self.partition.allocator(col, row)
            pre_base = alloc.alloc(
                f"{node.name}/pre@r{row}", home.feature_count * out_size
            )
            bias_base = alloc.alloc(
                f"{node.name}/bias@r{row}", home.feature_count * out_size
            )
            bias_image = np.repeat(
                bias[home.first_feature:
                     home.first_feature + home.feature_count],
                out_size,
            ).astype(np.float32)
            self.preloads.append(_Preload(col, row, bias_base, bias_image))
            prog.append(make(
                Opcode.MEMTRACK,
                addr=pre_base,
                port=right,
                size=home.feature_count * out_size,
                num_updates=home.feature_count * (in_shape.count + 1),
                num_reads=1,
                comment=f"track {node.name} partial sums",
            ))

            # Kernels, preloaded into the left tile.
            kwords = k * k
            kern_alloc = self.partition.allocator(col - 1, row)
            kern_base = kern_alloc.alloc(
                f"{node.name}/kernels@r{row}",
                home.feature_count * in_shape.count * kwords,
            )
            kern_image = weights[
                home.first_feature:
                home.first_feature + home.feature_count
            ].reshape(-1)
            self.preloads.append(
                _Preload(col - 1, row, kern_base, kern_image)
            )

            # Body: batch convolution, Fig 9 steps 1-2, then bias.
            for f_local in range(home.feature_count):
                for g in range(in_shape.count):
                    body.append(make(
                        Opcode.NDCONV,
                        in_addr=stage_base + g * fwords,
                        in_port=left,
                        in_size=pack_shape(in_shape.height, in_shape.width),
                        kernel_addr=kern_base
                        + (f_local * in_shape.count + g) * kwords,
                        kernel_size=pack_shape(k, k),
                        stride=spec.stride,
                        pad=spec.pad,
                        out_addr=pre_base + f_local * out_size,
                        out_port=right,
                        is_accum=int(g > 0),
                        comment=f"conv out={home.first_feature + f_local} "
                                f"in={g}",
                    ))
                body.append(make(
                    Opcode.NDACCUM,
                    src_addr=bias_base + f_local * out_size,
                    port=right,
                    size=out_size,
                    dst_addr=pre_base + f_local * out_size,
                    comment=f"bias out={home.first_feature + f_local}",
                ))
            # Step 4: activation into the home block.
            body.append(make(
                Opcode.NDACTFN,
                fn_type=ACT_CODES.get(spec.activation, 0),
                in_addr=pre_base,
                port=right,
                size=home.feature_count * out_size,
                out_addr=home.address,
                out_port=right,
                comment=f"{spec.activation.value} -> home block",
            ))
            prog.extend(body)
            prog.append(make(Opcode.HALT))
            programs.append(prog)
        return programs

    # ------------------------------------------------------------------
    def _compile_pool(self, node: LayerNode) -> List[Program]:
        spec = node.spec
        src = self.net[node.input_names[0]]
        col = self.partition.column_of[node.name]
        in_shape = node.input_shapes[0]
        if isinstance(spec, PoolSpec):
            if spec.pad:
                raise MappingError(
                    "engine code generation supports unpadded pooling"
                )
            window, stride = spec.window, spec.effective_stride
            mode = spec.mode
        else:
            assert isinstance(spec, GlobalPoolSpec)
            window = in_shape.height
            stride = in_shape.height
            mode = spec.mode
        src_blocks = {b.row: b for b in self.partition.blocks_of(src.name)}
        programs = []
        for home in self.partition.blocks_of(node.name):
            row = home.row
            left = self._port(col - 1, row)
            right = self._port(col, row)
            prog = Program(tile=f"{node.name}@c{col}r{row}")
            # Pooling writes its home block one feature at a time.
            self._out_tracker(
                prog, node, home, col, num_updates=home.feature_count
            )
            src_block = src_blocks[row]
            for f_local in range(home.feature_count):
                feature = home.first_feature + f_local
                prog.append(make(
                    Opcode.NDSUBSAMP,
                    samp_type=SAMP_CODES[mode],
                    in_addr=src_block.feature_address(feature),
                    port=left,
                    in_size=pack_shape(in_shape.height, in_shape.width),
                    window=window,
                    stride=stride,
                    out_addr=home.address + f_local * home.feature_words,
                    out_port=right,
                    comment=f"pool feature {feature}",
                ))
            prog.append(make(Opcode.HALT))
            programs.append(prog)
        return programs

    # ------------------------------------------------------------------
    def _compile_fc(self, node: LayerNode) -> List[Program]:
        spec = node.spec
        assert isinstance(spec, FCSpec)
        src = self.net[node.input_names[0]]
        col = self.partition.column_of[node.name]
        in_elems = node.input_shapes[0].elements
        weights = self.model.state[node.name].weights
        bias = self.model.state[node.name].bias
        programs = []
        for home in self.partition.blocks_of(node.name):
            row = home.row
            left = self._port(col - 1, row)
            right = self._port(col, row)
            prog = Program(tile=f"{node.name}@c{col}r{row}")
            body: List[Instruction] = []
            self._out_tracker(prog, node, home, col)
            stage_base, _ = self._stage_inputs(
                prog, body, src, col, row, reads_per_feature=0, tag=node.name
            )
            # The staged vector is read as a whole (not per feature):
            # replace the tracker emitted by _stage_inputs with the FC
            # read count.
            tracked = prog.instructions[-1]
            assert tracked.opcode is Opcode.MEMTRACK
            prog.instructions[-1] = make(
                Opcode.MEMTRACK,
                addr=tracked.operand("addr"),
                port=tracked.operand("port"),
                size=tracked.operand("size"),
                num_updates=tracked.operand("num_updates"),
                num_reads=self._fc_staging_reads(node, home.feature_count),
                comment="track staged FC input vector",
            )

            alloc = self.partition.allocator(col, row)
            pre_base = alloc.alloc(
                f"{node.name}/pre@r{row}", home.feature_count
            )
            bias_base = alloc.alloc(
                f"{node.name}/bias@r{row}", home.feature_count
            )
            self.preloads.append(_Preload(
                col, row, bias_base,
                bias[home.first_feature:
                     home.first_feature + home.feature_count].copy(),
            ))
            prog.append(make(
                Opcode.MEMTRACK,
                addr=pre_base,
                port=right,
                size=home.feature_count,
                num_updates=2,
                num_reads=1,
                comment=f"track {node.name} pre-activation",
            ))

            w_alloc = self.partition.allocator(col - 1, row)
            w_base = w_alloc.alloc(
                f"{node.name}/weights@r{row}",
                home.feature_count * in_elems,
            )
            self.preloads.append(_Preload(
                col - 1, row, w_base,
                weights[home.first_feature:
                        home.first_feature + home.feature_count].reshape(-1),
            ))

            body.append(make(
                Opcode.MATMUL,
                in1_addr=stage_base,
                in1_port=left,
                in1_size=pack_shape(1, in_elems),
                in2_addr=w_base,
                in2_port=left,
                in2_size=pack_shape(home.feature_count, in_elems),
                out_addr=pre_base,
                out_port=right,
                is_accum=0,
                comment=f"matmul rows [{home.first_feature}, "
                        f"{home.first_feature + home.feature_count})",
            ))
            body.append(make(
                Opcode.NDACCUM,
                src_addr=bias_base,
                port=right,
                size=home.feature_count,
                dst_addr=pre_base,
                comment="bias add",
            ))
            body.append(make(
                Opcode.NDACTFN,
                fn_type=ACT_CODES.get(spec.activation, 0),
                in_addr=pre_base,
                port=right,
                size=home.feature_count,
                out_addr=home.address,
                out_port=right,
                comment=f"{spec.activation.value} -> home block",
            ))
            prog.extend(body)
            prog.append(make(Opcode.HALT))
            programs.append(prog)
        return programs

    # ------------------------------------------------------------------
    @staticmethod
    def _align_prologues(programs: List[Program]) -> None:
        """Pad every program's tracker prologue to the same length so all
        trackers are armed before any tile issues its first data access
        (the round-robin scheduler executes one instruction per tile per
        round)."""
        def prologue_len(prog: Program) -> int:
            n = 0
            for instr in prog:
                if instr.opcode in (Opcode.MEMTRACK, Opcode.DMA_MEMTRACK):
                    n += 1
                else:
                    break
            return n

        longest = max(prologue_len(p) for p in programs)
        for prog in programs:
            pad = longest - prologue_len(prog)
            if pad:
                filler = [
                    make(Opcode.LDRI, rd=0, value=0, comment="prologue pad")
                    for _ in range(pad)
                ]
                prog.instructions[0:0] = filler


def compile_forward(
    net: Network,
    model: ReferenceModel,
    chip: Optional[ChipConfig] = None,
    rows: int = 2,
) -> CompiledForward:
    """Convenience wrapper: compile ``net``'s forward pass for the engine."""
    return ForwardCompiler(net, model, chip, rows).compile()
