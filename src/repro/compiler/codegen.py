"""Code generation: compile a network's forward pass to ISA programs.

This is the engine-facing half of the compiler (the paper's phase B,
Fig 13): given a sequential network and a parameterised reference model,
it emits one ScaleDeep program per CompHeavy tile, arranges the memory
image (home feature blocks, staged inputs, kernels, biases), and arms
the MEMTRACK trackers that synchronise producers with consumers.

Since the IR refactor the emission itself lives in the pass pipeline
(:mod:`repro.compiler.passes`): this module builds the tile-level IR
for the partition, drives ``legalize -> place-check -> tracker-assign
-> schedule -> lower`` in the sequential exact-tracker dialect, and
wraps the emitted programs in :class:`CompiledForward`.  The generated
code follows the CONV-layer-FP recipe of Fig 9, every address resolved
statically (the data flow of a DNN is known at compile time — the
property the whole synchronization scheme rests on), so loops are
unrolled.

Scope: forward propagation of sequential networks without grouped
convolutions or pooling padding — enough to run the tiny zoo networks
end-to-end and validate the engine against the numpy golden model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.arch.chip import ChipConfig
from repro.arch.presets import conv_chip
from repro.compiler.ir import MappingIR, Phase, build_tile_ir
from repro.compiler.partition import (
    FeatureHome,
    StatePartition,
    partition_sequential,
)
from repro.compiler.passes.fuse import FusePass
from repro.compiler.passes.legalize import LegalizePass
from repro.compiler.passes.lower import LowerPass
from repro.compiler.passes.manager import (
    PassContext,
    PassManager,
    PassStats,
)
from repro.compiler.passes.place_check import PlaceCheckPass
from repro.compiler.passes.schedule import SchedulePass
from repro.compiler.passes.tracker_assign import TrackerAssignPass
from repro.compiler.templates import Preload, align_prologues
from repro.dnn.network import Network
from repro.errors import MappingError, SimulationError
from repro.functional.reference import ReferenceModel
from repro.isa.program import Program
from repro.sim.engine import Engine, RunReport
from repro.sim.machine import Machine

#: Historic name; the dataclass now lives with the shared emission
#: helpers in :mod:`repro.compiler.templates`.
_Preload = Preload


@dataclass
class CompiledForward:
    """Programs plus the recipe to build a fresh machine for each run."""

    network: Network
    chip: ChipConfig
    rows: int
    partition: StatePartition
    programs: List[Program]
    preloads: List[_Preload]
    output_blocks: List[FeatureHome]
    #: The compiled tile-level IR and per-pass statistics (None/empty
    #: for hand-assembled program sets).
    ir: Optional[MappingIR] = None
    pass_stats: List[PassStats] = field(default_factory=list)

    def build_machine(self) -> Machine:
        """A fresh machine with weights/biases preloaded."""
        machine = Machine(self.chip, self.partition.mem_columns, self.rows)
        for pre in self.preloads:
            tile = machine.mem_tile(machine.mem_tile_id(pre.col, pre.row))
            tile.write(pre.addr, pre.data, accumulate=False)
        for program in self.programs:
            machine.load_program(program)
        return machine

    def run(
        self, image: np.ndarray, fast: bool = True, fused: bool = True
    ) -> Tuple[np.ndarray, RunReport]:
        """Execute the forward pass on one image; returns (output vector,
        run statistics).  ``fast=False`` selects the legacy interpreter
        (identical reports and outputs; kept for the equivalence tests).
        ``fused=False`` disables superop execution on the fast path —
        outputs, instruction counts and busy cycles stay bit-identical
        to fused runs, but superops compress stall rounds, so makespan
        ``cycles``/``rounds``/blocked counts may differ (see
        :class:`~repro.sim.engine.RunReport`)."""
        machine = self.build_machine()
        # Write the input image into column 0's home blocks.
        in_node = self.network.input
        for home in self.partition.blocks_of(in_node.name):
            tile = machine.mem_tile(machine.mem_tile_id(0, home.row))
            block = image[
                home.first_feature : home.first_feature + home.feature_count
            ]
            tile.write(home.address, block, accumulate=False)
        engine = Engine(machine, fast=fast, fused=fast and fused)
        report = engine.run()
        out = np.concatenate([
            machine.mem_tile(
                machine.mem_tile_id(
                    self.partition.column_of[self.network.output.name],
                    home.row,
                )
            ).read(home.address, home.feature_count * home.feature_words)
            .copy()
            for home in self.output_blocks
        ])
        return out, report

    def run_batch(
        self, images: np.ndarray
    ) -> Tuple[np.ndarray, RunReport]:
        """Execute the forward pass on a minibatch at once: ``images``
        is ``(batch, channels, height, width)`` (any per-image layout
        matching :meth:`run`'s input works — only the leading batch axis
        is special).  Decoded op tables are shared and every tensor op
        vectorises across the batch on mirrored scratchpads; cycles and
        instruction counts model ONE image's program, identical to
        :meth:`run`.  Returns ``(batch, features)`` outputs plus the
        report."""
        images = np.asarray(images, dtype=np.float32)
        if images.ndim < 2:
            raise SimulationError(
                f"run_batch needs a leading batch axis, got shape "
                f"{images.shape}"
            )
        machine = self.build_machine()
        engine = Engine(machine)
        state = engine.make_batch(images.shape[0])
        in_node = self.network.input
        for home in self.partition.blocks_of(in_node.name):
            port = machine.mem_tile_id(0, home.row)
            block = images[
                :, home.first_feature : home.first_feature
                + home.feature_count
            ]
            state.write(port, home.address, block, accumulate=False)
        report = engine.run()
        out_col = self.partition.column_of[self.network.output.name]
        out = np.concatenate([
            state.read(
                machine.mem_tile_id(out_col, home.row),
                home.address,
                home.feature_count * home.feature_words,
            ).copy()
            for home in self.output_blocks
        ], axis=1)
        return out, report

    @property
    def instruction_count(self) -> int:
        return sum(len(p) for p in self.programs)

    def machine_shape(self):
        """The addressing envelope for the static verifier."""
        from repro.compiler.verifier import MachineShape

        return MachineShape(
            mem_tiles=self.partition.mem_columns * self.rows,
            words_per_tile=self.chip.mem_tile.capacity_bytes // 4,
            trackers_per_tile=self.chip.mem_tile.tracker_count,
        )

    def preloaded_regions(self):
        """(port, addr, words) regions written at machine build: the
        compiler's preloads plus the input image's home blocks."""
        regions = [
            (pre.col * self.rows + pre.row, pre.addr, pre.data.size)
            for pre in self.preloads
        ]
        for home in self.partition.blocks_of(self.network.input.name):
            regions.append((
                home.row,  # mem column 0
                home.address,
                home.feature_count * home.feature_words,
            ))
        return regions

    def verify(self, host_writes=()):
        """Run the static verifier over this compiled set (raises on
        any finding)."""
        from repro.compiler.verifier import assert_verified

        assert_verified(
            self.programs, self.machine_shape(),
            preloaded=self.preloaded_regions(), host_writes=host_writes,
        )

    def runner(
        self, fast: bool = True, fused: bool = True
    ) -> "ForwardRunner":
        """A persistent-machine runner for streaming many images: the
        machine is built once, weights stay resident, and programs are
        rewound per image (the steady-state operation of Sec 3.2.3,
        minus the inter-image overlap)."""
        return ForwardRunner(self, fast=fast, fused=fused)


class ForwardRunner:
    """Streams images through one compiled forward pass."""

    def __init__(
        self,
        compiled: CompiledForward,
        fast: bool = True,
        fused: bool = True,
    ) -> None:
        self.compiled = compiled
        self.machine = compiled.build_machine()
        self.engine = Engine(self.machine, fast=fast, fused=fast and fused)
        self.images_run = 0

    def __call__(self, image: np.ndarray) -> Tuple[np.ndarray, RunReport]:
        compiled = self.compiled
        self.machine.reset_programs()
        in_node = compiled.network.input
        for home in compiled.partition.blocks_of(in_node.name):
            tile = self.machine.mem_tile(
                self.machine.mem_tile_id(0, home.row)
            )
            tile.write(
                home.address,
                image[home.first_feature:
                      home.first_feature + home.feature_count],
                accumulate=False,
            )
        report = self.engine.run()
        out_col = compiled.partition.column_of[compiled.network.output.name]
        out = np.concatenate([
            self.machine.mem_tile(self.machine.mem_tile_id(out_col, h.row))
            .read(h.address, h.feature_count * h.feature_words).copy()
            for h in compiled.output_blocks
        ])
        self.images_run += 1
        return out, report


class ForwardCompiler:
    """Compiles FP programs for one (network, model) pair.

    Subclasses select the lowering *dialect* (``exact`` arms every
    tracker with hand-derived counts; ``calibrated`` arms placeholders
    and runs the static access analysis), the legalization *scope*, the
    IR *phases*, and how the network is partitioned — everything else
    is the shared pass pipeline.
    """

    dialect = "exact"
    scope = "forward"
    phases: Tuple[Phase, ...] = (Phase.FP,)
    #: Whether this compiler's programs may carry superop fusion plans.
    #: The training compiler opts out: its programs re-run over shared
    #: regions across FP/BP/WG phases, outside the forward-only
    #: dataflow analysis the fusion pass performs.
    supports_fusion = True

    def __init__(
        self,
        net: Network,
        model: ReferenceModel,
        chip: Optional[ChipConfig] = None,
        rows: int = 2,
        fuse: bool = True,
    ) -> None:
        if model.net is not net:
            raise MappingError("model must be built from the same network")
        self.net = net
        self.model = model
        self.chip = chip or conv_chip()
        self.rows = rows
        self.fuse = bool(fuse) and self.supports_fusion
        self.partition = self._partition()
        self.preloads: List[_Preload] = []
        self.ir: Optional[MappingIR] = None
        self.pass_stats: List[PassStats] = []

    def _partition(self) -> StatePartition:
        return partition_sequential(
            self.net, self.rows, self.chip.mem_tile.capacity_bytes // 4
        )

    # ------------------------------------------------------------------
    def _pipeline(self, align: bool) -> PassManager:
        passes = [
            LegalizePass(self.scope),
            PlaceCheckPass(),
            TrackerAssignPass(),
            SchedulePass(),
            LowerPass(align=align),
        ]
        # Fusion needs final pcs: with align=False the caller will
        # prepend prologue pads later, which would shift every span.
        if self.fuse and align:
            passes.append(FusePass())
        return PassManager(passes)

    def _run_pipeline(
        self,
        align: bool,
        minibatch: int = 1,
        learning_rate: Tuple[int, int] = (1, 100),
    ) -> PassContext:
        ir = build_tile_ir(
            self.net, self.partition, self.rows,
            phases=self.phases, minibatch=minibatch,
        )
        ctx = PassContext(
            net=self.net,
            model=self.model,
            chip=self.chip,
            partition=self.partition,
            rows=self.rows,
            dialect=self.dialect,
            minibatch=minibatch,
            learning_rate=learning_rate,
        )
        self.ir, self.pass_stats = self._pipeline(align).run(ir, ctx)
        self.preloads = ctx.preloads
        return ctx

    def compile(self, align: bool = True) -> CompiledForward:
        """Compile the forward programs.  ``align=False`` defers prologue
        alignment to a caller that will add more programs."""
        ctx = self._run_pipeline(align)
        compiled = CompiledForward(
            network=self.net,
            chip=self.chip,
            rows=self.rows,
            partition=self.partition,
            programs=ctx.programs,
            preloads=self.preloads,
            output_blocks=self.partition.blocks_of(self.net.output.name),
            ir=self.ir,
            pass_stats=self.pass_stats,
        )
        if align:
            # The training compiler verifies the combined set itself
            # (its error-injection region is a host write).
            compiled.verify()
        return compiled

    # ------------------------------------------------------------------
    @staticmethod
    def _align_prologues(programs: List[Program]) -> None:
        align_prologues(programs)


def compile_forward(
    net: Network,
    model: ReferenceModel,
    chip: Optional[ChipConfig] = None,
    rows: int = 2,
) -> CompiledForward:
    """Convenience wrapper: compile ``net``'s forward pass for the engine."""
    return ForwardCompiler(net, model, chip, rows).compile()
