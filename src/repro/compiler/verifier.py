"""Static verification of compiled program sets and compiler IR.

`Program.validate` checks one program's structural well-formedness;
this verifier checks whole compiled *sets* against a machine shape, and
— since the pass pipeline landed — :func:`verify_ir` checks a
:class:`~repro.compiler.ir.MappingIR` between passes:

* every address range a data instruction touches fits inside its
  tile's scratchpad;
* every port names a tile that exists (or external memory);
* every read of a scratchpad range is preceded — somewhere in the set —
  by a write or a machine-build preload covering it (no reads of
  never-written memory);
* armed trackers fit the MemHeavy tracker-file capacity per tile.

The code generators run it as a back-end gate: a program set that
passes cannot fault the engine on addressing, and cannot silently read
uninitialised scratchpad.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import IRVerificationError, ProgramError
from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.sim.engine import EXTERNAL_PORT
from repro.sim.machine import is_reg_operand, instruction_accesses


@dataclass(frozen=True)
class Issue:
    """One verification finding."""

    program: str
    pc: int
    message: str

    def __str__(self) -> str:
        return f"{self.program}@{self.pc}: {self.message}"


@dataclass(frozen=True)
class MachineShape:
    """The addressing envelope programs must respect."""

    mem_tiles: int
    words_per_tile: int
    trackers_per_tile: int = 32

    def valid_port(self, port: int) -> bool:
        return port == EXTERNAL_PORT or 0 <= port < self.mem_tiles


def _ranges(
    programs: Sequence[Program],
) -> Tuple[List[Tuple[str, int, int, int, int]],
           List[Tuple[str, int, int, int, int]]]:
    """All (program, pc, port, addr, words) reads and writes."""
    reads, writes = [], []
    for program in programs:
        for pc, instr in enumerate(program):
            if any(is_reg_operand(v) for v in instr.operands):
                continue  # register-indirect: checked at execution
            r, w = instruction_accesses(instr)
            for port, addr, count in r:
                reads.append((program.tile, pc, port, addr, count))
            for port, addr, count in w:
                writes.append((program.tile, pc, port, addr, count))
    return reads, writes


def verify_programs(
    programs: Sequence[Program],
    shape: MachineShape,
    preloaded: Sequence[Tuple[int, int, int]] = (),
    host_writes: Sequence[Tuple[int, int, int]] = (),
) -> List[Issue]:
    """Check a program set; returns the list of findings (empty = ok).

    ``preloaded`` lists (port, addr, words) regions written at machine
    build (weights, biases, the input image's home blocks);
    ``host_writes`` lists regions the host injects between phases.
    """
    issues: List[Issue] = []
    reads, writes = _ranges(programs)

    # 1. Addressing envelope.
    for tile, pc, port, addr, count in reads + writes:
        if not shape.valid_port(port):
            issues.append(Issue(tile, pc, f"port {port} does not exist"))
            continue
        if port == EXTERNAL_PORT:
            continue
        if addr < 0 or addr + count > shape.words_per_tile:
            issues.append(Issue(
                tile, pc,
                f"range [{addr}, {addr + count}) exceeds the "
                f"{shape.words_per_tile}-word scratchpad of tile {port}",
            ))

    # 2. No reads of never-written scratchpad.  Coverage is tracked at
    # word granularity per tile (these programs are small).
    written: Dict[int, Set[int]] = {}
    for port, addr, count in list(preloaded) + list(host_writes):
        written.setdefault(port, set()).update(range(addr, addr + count))
    for _, _, port, addr, count in writes:
        if port != EXTERNAL_PORT:
            written.setdefault(port, set()).update(
                range(addr, addr + count)
            )
    for tile, pc, port, addr, count in reads:
        if port == EXTERNAL_PORT:
            continue
        covered = written.get(port, set())
        missing = [w for w in range(addr, addr + count) if w not in covered]
        if missing:
            issues.append(Issue(
                tile, pc,
                f"reads {len(missing)} never-written word(s) of tile "
                f"{port} starting at {missing[0]}",
            ))

    # 3. Tracker-file capacity per tile.
    armed: Dict[int, int] = {}
    for program in programs:
        for pc, instr in enumerate(program):
            if instr.opcode in (Opcode.MEMTRACK, Opcode.DMA_MEMTRACK):
                o = instr.named_operands()
                port = (
                    o["target"]
                    if instr.opcode is Opcode.DMA_MEMTRACK
                    else o["port"]
                )
                armed[port] = armed.get(port, 0) + 1
    for port, count in armed.items():
        if count > shape.trackers_per_tile:
            issues.append(Issue(
                "<set>", -1,
                f"tile {port} arms {count} trackers; the tracker file "
                f"holds {shape.trackers_per_tile}",
            ))
    return issues


# ---------------------------------------------------------------------------
# IR verification (runs between compiler passes)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class IRIssue:
    """One IR verification finding, anchored to an op (or the IR)."""

    op: str
    message: str

    def __str__(self) -> str:
        return f"{self.op}: {self.message}"


def verify_ir(ir, shape: Optional[MachineShape] = None) -> List[IRIssue]:
    """Check a :class:`~repro.compiler.ir.MappingIR`; returns findings.

    Structural checks apply to both levels (unique ops, resolvable edge
    endpoints, positive edge words, a schedule that references real ops
    exactly once).  At tile level a ``shape`` additionally bounds the
    placements: home blocks must fit the scratchpad and no two FP ops
    may claim overlapping home words of the same tile.
    """
    from repro.compiler.ir import Phase  # local: avoid import cycle

    issues: List[IRIssue] = []
    names: Set[str] = set()
    for op in ir.ops:
        if op.name in names:
            issues.append(IRIssue(op.name, "duplicate op name"))
        names.add(op.name)
        if op.column < 0 and ir.level == "tile":
            issues.append(IRIssue(
                op.name, f"tile-level op has no column ({op.column})"
            ))
    for edge in ir.edges:
        for end in (edge.src, edge.dst):
            if end not in names:
                issues.append(IRIssue(
                    end, f"edge {edge.src} -> {edge.dst} references an "
                    "op that does not exist",
                ))
        if edge.words <= 0:
            issues.append(IRIssue(
                edge.src,
                f"edge {edge.src} -> {edge.dst} moves {edge.words} words",
            ))
        if edge.src == edge.dst:
            issues.append(IRIssue(
                edge.src, "self-edge (an op cannot feed itself)"
            ))
    seen_sched: Set[str] = set()
    for name in ir.schedule:
        if name not in names:
            issues.append(IRIssue(
                name, "schedule references an op that does not exist"
            ))
        elif name in seen_sched:
            issues.append(IRIssue(name, "op scheduled twice"))
        seen_sched.add(name)

    if ir.level == "tile" and shape is not None:
        claimed: Dict[Tuple[int, int], List[Tuple[int, int, str]]] = {}
        for op in ir.ops:
            if op.phase is not Phase.FP:
                continue
            attrs = op.attrs
            if "address" not in attrs:
                continue
            words = attrs["feature_count"] * attrs["feature_words"]
            addr = attrs["address"]
            if addr < 0 or addr + words > shape.words_per_tile:
                issues.append(IRIssue(
                    op.name,
                    f"home block [{addr}, {addr + words}) exceeds the "
                    f"{shape.words_per_tile}-word scratchpad",
                ))
            if op.row < 0 or op.column < 0:
                issues.append(IRIssue(
                    op.name, f"unplaced op (c{op.column} r{op.row})"
                ))
                continue
            for lo, hi, other in claimed.get((op.column, op.row), []):
                if addr < hi and lo < addr + words:
                    issues.append(IRIssue(
                        op.name,
                        f"home block overlaps {other} on tile "
                        f"c{op.column} r{op.row}",
                    ))
            claimed.setdefault((op.column, op.row), []).append(
                (addr, addr + words, op.name)
            )
    return issues


def assert_ir_verified(ir, shape: Optional[MachineShape] = None) -> None:
    """Raise :class:`IRVerificationError` listing every finding."""
    issues = verify_ir(ir, shape)
    if issues:
        summary = "; ".join(str(i) for i in issues[:5])
        more = f" (+{len(issues) - 5} more)" if len(issues) > 5 else ""
        raise IRVerificationError(
            f"IR verification failed for {ir.network}: {summary}{more}",
            issues=issues,
        )


def assert_verified(
    programs: Sequence[Program],
    shape: MachineShape,
    preloaded: Sequence[Tuple[int, int, int]] = (),
    host_writes: Sequence[Tuple[int, int, int]] = (),
) -> None:
    """Raise :class:`ProgramError` listing every finding, if any."""
    issues = verify_programs(programs, shape, preloaded, host_writes)
    if issues:
        summary = "; ".join(str(i) for i in issues[:5])
        more = f" (+{len(issues) - 5} more)" if len(issues) > 5 else ""
        raise ProgramError(f"program verification failed: {summary}{more}")
