"""The unified compiler IR: typed, serialisable mapping intermediate form.

Everything between workload mapping (STEP1-6, Fig 13) and execution
modelling flows through :class:`MappingIR`: a flat list of *ops* — each
a unit of placed work with a phase tag (FP/BP/WG), a tile/column
placement and free-form integer attributes — connected by *data-movement
edges* that carry word counts.  Two levels share the one schema:

* **unit level** (``level="unit"``): one op per (phase, mapping unit)
  as produced by STEP1-6 for the analytical model.  :class:`UnitPlan`
  entries mirror the column allocations.
* **tile level** (``level="tile"``): one op per (phase, layer, home
  block) as consumed by the engine code generators; attrs carry the
  concrete home placement (row, address, feature range).

The IR is plain data: serialisable to JSON (:meth:`MappingIR.to_json`)
and back without loss, so compiled placements can be cached, diffed and
re-lowered.  The pass pipeline (:mod:`repro.compiler.passes`) transforms
and verifies instances of it; ``IR_SCHEMA_VERSION`` is folded into the
compile-cache fingerprints so stale pre-IR artifacts self-invalidate.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.dnn.layers import LayerKind
from repro.dnn.network import Network
from repro.errors import IRError

#: Version of the IR schema.  Bump when the op/edge/unit shape or the
#: meaning of standard attrs changes: fingerprints bake it in, so every
#: cached artifact produced under an older schema becomes unreachable.
IR_SCHEMA_VERSION = "1"


class Phase(enum.Enum):
    """Training-iteration phase an op belongs to (paper Fig 3)."""

    FP = "fp"
    BP = "bp"
    WG = "wg"

    @classmethod
    def parse(cls, text: str) -> "Phase":
        try:
            return cls(text.lower())
        except ValueError:
            choices = ", ".join(p.value for p in cls)
            raise IRError(
                f"unknown phase {text!r} (choose from: {choices})"
            ) from None


@dataclass(frozen=True)
class IROp:
    """One placed unit of work.

    ``name`` is unique within the IR and encodes phase/layer/placement
    (e.g. ``fp:conv1@r0``); ``column``/``row`` place it (row is -1 at
    unit level, where placement is a column span); ``attrs`` carries
    level-specific integers/strings (home address, feature range, column
    counts, derates).
    """

    name: str
    layer: str
    kind: str
    phase: Phase
    column: int
    row: int = -1
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "layer": self.layer,
            "kind": self.kind,
            "phase": self.phase.value,
            "column": self.column,
            "row": self.row,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, form: Dict[str, Any]) -> "IROp":
        return cls(
            name=form["name"],
            layer=form["layer"],
            kind=form["kind"],
            phase=Phase.parse(form["phase"]),
            column=int(form["column"]),
            row=int(form.get("row", -1)),
            attrs=dict(form.get("attrs", {})),
        )


@dataclass(frozen=True)
class IREdge:
    """A data-movement dependence: ``words`` words flow src -> dst."""

    src: str
    dst: str
    words: int
    kind: str = "data"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "src": self.src, "dst": self.dst,
            "words": self.words, "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, form: Dict[str, Any]) -> "IREdge":
        return cls(
            src=form["src"], dst=form["dst"],
            words=int(form["words"]), kind=form.get("kind", "data"),
        )


@dataclass
class UnitPlan:
    """Serialisable column allocation of one mapping unit (STEP2-6)."""

    unit: str
    members: Tuple[str, ...]
    attached: Tuple[str, ...]
    kind: str
    chip_kind: str
    columns: int
    min_columns: int
    weights_on_chip: bool
    training_flops: int = 0
    state_bytes: int = 0
    assigned_columns: Tuple[int, ...] = ()
    home_column: int = -1
    derate: float = 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "unit": self.unit,
            "members": list(self.members),
            "attached": list(self.attached),
            "kind": self.kind,
            "chip_kind": self.chip_kind,
            "columns": self.columns,
            "min_columns": self.min_columns,
            "weights_on_chip": self.weights_on_chip,
            "training_flops": self.training_flops,
            "state_bytes": self.state_bytes,
            "assigned_columns": list(self.assigned_columns),
            "home_column": self.home_column,
            "derate": self.derate,
        }

    @classmethod
    def from_dict(cls, form: Dict[str, Any]) -> "UnitPlan":
        return cls(
            unit=form["unit"],
            members=tuple(form["members"]),
            attached=tuple(form.get("attached", ())),
            kind=form["kind"],
            chip_kind=form["chip_kind"],
            columns=int(form["columns"]),
            min_columns=int(form["min_columns"]),
            weights_on_chip=bool(form["weights_on_chip"]),
            training_flops=int(form.get("training_flops", 0)),
            state_bytes=int(form.get("state_bytes", 0)),
            assigned_columns=tuple(form.get("assigned_columns", ())),
            home_column=int(form.get("home_column", -1)),
            derate=float(form.get("derate", 1.0)),
        )


@dataclass
class MappingIR:
    """The unified IR: ops + edges + unit plans + a schedule.

    ``schedule`` is the deterministic lowering order (op names); the
    engine's round-robin scheduler makes program order cycle-visible, so
    the schedule is explicit IR state rather than an emission detail.
    """

    network: str
    node: str
    level: str  # "unit" | "tile"
    ops: List[IROp] = field(default_factory=list)
    edges: List[IREdge] = field(default_factory=list)
    units: Dict[str, UnitPlan] = field(default_factory=dict)
    schedule: List[str] = field(default_factory=list)
    footprint: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)
    schema_version: str = IR_SCHEMA_VERSION

    # ------------------------------------------------------------------
    def add_op(self, op: IROp) -> IROp:
        if any(existing.name == op.name for existing in self.ops):
            raise IRError(f"duplicate op {op.name!r}")
        self.ops.append(op)
        return op

    def add_edge(
        self, src: str, dst: str, words: int, kind: str = "data"
    ) -> IREdge:
        edge = IREdge(src=src, dst=dst, words=words, kind=kind)
        self.edges.append(edge)
        return edge

    def op(self, name: str) -> IROp:
        for op in self.ops:
            if op.name == name:
                return op
        raise IRError(f"no op named {name!r} in {self.network} IR")

    def ops_in_phase(self, phase: Phase) -> List[IROp]:
        return [op for op in self.ops if op.phase is phase]

    def consumers_of(self, name: str) -> List[IREdge]:
        return [e for e in self.edges if e.src == name]

    def producers_of(self, name: str) -> List[IREdge]:
        return [e for e in self.edges if e.dst == name]

    def filtered(self, phase: Phase) -> "MappingIR":
        """A copy restricted to one phase (edges with both endpoints in
        the phase; schedule filtered to surviving ops)."""
        keep = {op.name for op in self.ops if op.phase is phase}
        return MappingIR(
            network=self.network,
            node=self.node,
            level=self.level,
            ops=[replace(op) for op in self.ops if op.name in keep],
            edges=[
                e for e in self.edges
                if e.src in keep and e.dst in keep
            ],
            units=dict(self.units),
            schedule=[n for n in self.schedule if n in keep],
            footprint=dict(self.footprint),
            meta=dict(self.meta),
            schema_version=self.schema_version,
        )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Size summary: op/edge counts per phase plus moved words."""
        out: Dict[str, int] = {
            "ops": len(self.ops),
            "edges": len(self.edges),
            "units": len(self.units),
        }
        for phase in Phase:
            out[f"ops_{phase.value}"] = len(self.ops_in_phase(phase))
        out["edge_words"] = sum(e.words for e in self.edges)
        return out

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "network": self.network,
            "node": self.node,
            "level": self.level,
            "ops": [op.to_dict() for op in self.ops],
            "edges": [e.to_dict() for e in self.edges],
            "units": {
                name: plan.to_dict()
                for name, plan in sorted(self.units.items())
            },
            "schedule": list(self.schedule),
            "footprint": dict(self.footprint),
            "meta": dict(self.meta),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, form: Dict[str, Any]) -> "MappingIR":
        version = form.get("schema_version")
        if version != IR_SCHEMA_VERSION:
            raise IRError(
                f"IR schema version {version!r} is not supported "
                f"(this compiler speaks {IR_SCHEMA_VERSION!r})"
            )
        return cls(
            network=form["network"],
            node=form["node"],
            level=form["level"],
            ops=[IROp.from_dict(o) for o in form.get("ops", [])],
            edges=[IREdge.from_dict(e) for e in form.get("edges", [])],
            units={
                name: UnitPlan.from_dict(u)
                for name, u in form.get("units", {}).items()
            },
            schedule=list(form.get("schedule", [])),
            footprint=dict(form.get("footprint", {})),
            meta=dict(form.get("meta", {})),
            schema_version=version,
        )

    @classmethod
    def from_json(cls, text: str) -> "MappingIR":
        try:
            form = json.loads(text)
        except json.JSONDecodeError as exc:
            raise IRError(f"malformed IR JSON: {exc}") from None
        return cls.from_dict(form)


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------
def _unit_phase_ops(
    ir: MappingIR, plan: UnitPlan, weighted: bool
) -> None:
    """Add one op per phase for a unit (BP/WG only when weighted)."""
    phases = [Phase.FP] + ([Phase.BP, Phase.WG] if weighted else [])
    for phase in phases:
        ir.add_op(IROp(
            name=f"{phase.value}:{plan.unit}",
            layer=plan.unit,
            kind=plan.kind,
            phase=phase,
            column=plan.home_column,
            attrs={
                "columns": plan.columns,
                "chip_kind": plan.chip_kind,
                "weights_on_chip": plan.weights_on_chip,
                "derate": plan.derate,
            },
        ))


def build_mapping_ir(net: Network, node_name: str, mapping) -> MappingIR:
    """Unit-level IR from a :class:`WorkloadMapping` (STEP1-6 output).

    One op per (phase, unit); FP edges follow the forward dataflow
    between units, BP edges run it backwards, and each weighted unit's
    WG op consumes its staged inputs (from the predecessor's FP) and its
    error (from its own BP).  Word counts are activation/error element
    counts — the quantities the paper's Fig 10 traffic model moves.
    """
    ir = MappingIR(network=net.name, node=node_name, level="unit")
    unit_of: Dict[str, str] = {}
    output_words: Dict[str, int] = {}
    all_allocs = list(mapping.conv_allocations.values()) + list(
        mapping.fc_allocations.values()
    )
    for alloc in all_allocs:
        plan = UnitPlan(
            unit=alloc.unit,
            members=tuple(alloc.members),
            attached=tuple(alloc.attached),
            kind=alloc.kind.value,
            chip_kind=alloc.chip_kind.value,
            columns=alloc.columns,
            min_columns=alloc.min_columns,
            weights_on_chip=alloc.weights_on_chip,
            training_flops=alloc.training_flops,
            state_bytes=alloc.state_bytes,
            assigned_columns=tuple(alloc.assigned_columns),
            home_column=alloc.home_column,
            derate=alloc.derate,
        )
        ir.units[alloc.unit] = plan
        for member in alloc.members + alloc.attached:
            unit_of[member] = alloc.unit
        output_words[alloc.unit] = sum(
            net[m].output_shape.elements for m in alloc.members
        )
        _unit_phase_ops(ir, plan, weighted=True)

    # Dataflow between units, collapsed from the layer graph.
    links: List[Tuple[str, str]] = []
    for node in net:
        dst = unit_of.get(node.name)
        if dst is None:
            continue
        for src_name in node.input_names:
            src = unit_of.get(src_name)
            if src is not None and src != dst and (src, dst) not in links:
                links.append((src, dst))
    for src, dst in links:
        words = output_words[src]
        ir.add_edge(f"fp:{src}", f"fp:{dst}", words, kind="activation")
        ir.add_edge(f"bp:{dst}", f"bp:{src}", words, kind="error")
        ir.add_edge(f"fp:{src}", f"wg:{dst}", words, kind="stage")
    for name in ir.units:
        ir.add_edge(
            f"bp:{name}", f"wg:{name}", output_words[name], kind="error"
        )

    # Pipeline schedule: FP in forward order, BP backwards, then WG.
    order = [u for u in ir.units]
    ir.schedule = (
        [f"fp:{u}" for u in order]
        + [f"bp:{u}" for u in reversed(order)]
        + [f"wg:{u}" for u in order]
    )
    ir.footprint = {
        "conv_chips_per_copy": mapping.conv_chips_per_copy,
        "clusters_per_copy": mapping.clusters_per_copy,
        "copies": mapping.copies,
        "remapped_columns": mapping.remapped_columns,
        "degraded": mapping.degraded,
    }
    return ir


def build_tile_ir(
    net: Network,
    partition,
    rows: int,
    phases: Iterable[Phase] = (Phase.FP,),
    minibatch: int = 1,
) -> MappingIR:
    """Tile-level IR for the functional engine: one op per (phase,
    layer, home block), edges following the staged data movement.

    The op attrs mirror the :class:`~repro.compiler.partition.FeatureHome`
    placement; the lowering pass turns each op into one ISA program.
    """
    phase_set = set(phases)
    ir = MappingIR(network=net.name, node="engine", level="tile")
    ir.meta["rows"] = rows
    ir.meta["minibatch"] = minibatch

    def block_attrs(home) -> Dict[str, Any]:
        return {
            "first_feature": home.first_feature,
            "feature_count": home.feature_count,
            "address": home.address,
            "feature_words": home.feature_words,
        }

    # FP ops (the input layer's blocks are host-written pseudo-ops).
    for node in net:
        col = partition.column_of[node.name]
        for home in partition.blocks_of(node.name):
            ir.add_op(IROp(
                name=f"fp:{node.name}@r{home.row}",
                layer=node.name,
                kind=node.kind.value,
                phase=Phase.FP,
                column=col,
                row=home.row,
                attrs=block_attrs(home),
            ))
    for node in net:
        if node.kind is LayerKind.INPUT:
            continue
        for home in partition.blocks_of(node.name):
            for src_name in node.input_names:
                src = net[src_name]
                for src_home in partition.blocks_of(src_name):
                    ir.add_edge(
                        f"fp:{src_name}@r{src_home.row}",
                        f"fp:{node.name}@r{home.row}",
                        src_home.feature_count
                        * src.output_shape.feature_size,
                        kind="stage",
                    )

    if Phase.BP in phase_set or Phase.WG in phase_set:
        seq = [n for n in net]
        weighted = (LayerKind.CONV, LayerKind.FC)
        for node in seq:
            if node.kind is LayerKind.INPUT:
                continue
            pred = net[node.input_names[0]]
            bp_exists = pred.kind is not LayerKind.INPUT
            if Phase.BP in phase_set and bp_exists and (
                node.kind in weighted or node.kind is LayerKind.SAMP
            ):
                # Weighted BP iterates the predecessor's blocks (it
                # produces err[pred]); pool BP iterates the node's own
                # err blocks (it up-samples its pooled error).
                bp_blocks = (
                    partition.blocks_of(pred.name)
                    if node.kind in weighted
                    else partition.blocks_of(node.name)
                )
                for bp_home in bp_blocks:
                    ir.add_op(IROp(
                        name=f"bp:{node.name}@r{bp_home.row}",
                        layer=node.name,
                        kind=node.kind.value,
                        phase=Phase.BP,
                        column=partition.column_of[node.name],
                        row=bp_home.row,
                        attrs={
                            "first_feature": bp_home.first_feature,
                            "feature_count": bp_home.feature_count,
                            "target": pred.name,
                        },
                    ))
            if Phase.WG in phase_set and node.kind in weighted:
                for home in partition.blocks_of(node.name):
                    ir.add_op(IROp(
                        name=f"wg:{node.name}@r{home.row}",
                        layer=node.name,
                        kind=node.kind.value,
                        phase=Phase.WG,
                        column=partition.column_of[node.name],
                        row=home.row,
                        attrs=dict(
                            block_attrs(home), minibatch=minibatch
                        ),
                    ))
        # The host's loss-gradient injection at the network output: a
        # tracker-counted write that un-blocks the backward wave.
        if Phase.BP in phase_set:
            final = net.output
            fin_blocks = partition.blocks_of(final.name)
            ir.add_op(IROp(
                name="bp:inject",
                layer=final.name,
                kind="inject",
                phase=Phase.BP,
                column=partition.column_of[final.name],
                row=fin_blocks[0].row,
                attrs={"feature_count": final.output_shape.count},
            ))
            err_words = final.output_shape.elements
            for op in list(ir.ops):
                if op.name != "bp:inject" and op.layer == final.name and (
                    op.phase in (Phase.BP, Phase.WG)
                ):
                    ir.add_edge("bp:inject", op.name, err_words,
                                kind="error")

        # Error dataflow: each BP op consumes the error of its layer and
        # produces the predecessor's; WG consumes its layer's error and
        # the staged FP inputs.
        for node in seq:
            if node.kind is LayerKind.INPUT:
                continue
            pred = net[node.input_names[0]]
            err_words = node.output_shape.elements
            for op in list(ir.ops):
                if op.phase is Phase.BP and op.layer == node.name:
                    succ_names = net.consumers(node.name)
                    if succ_names:
                        succ = net[succ_names[0]]
                        for other in ir.ops:
                            if (other.phase is Phase.BP
                                    and other.layer == succ.name):
                                ir.add_edge(
                                    other.name, op.name, err_words,
                                    kind="error",
                                )
                if op.phase is Phase.WG and op.layer == node.name:
                    ir.add_edge(
                        f"fp:{pred.name}@r{op.row}"
                        if any(
                            h.row == op.row
                            for h in partition.blocks_of(pred.name)
                        )
                        else f"fp:{pred.name}@r0",
                        op.name,
                        pred.output_shape.elements,
                        kind="stage",
                    )
    return ir
