"""Per-layer cost model: cycles, utilization cascade and link traffic.

This is the compiler's cost model, shared with the analytical performance
simulator.  For a layer mapped onto a set of chip columns it estimates,
per training step, the cycles spent in each subsystem — 2D-PE arrays,
MemHeavy SFUs, comp-mem links, mem-mem links and external memory — and
the stage cost is their maximum (the nested pipeline of Sec 3.2.3
overlaps them).

The utilization model follows the four-factor cascade the paper uses to
explain Fig 19:

1. *column granularity* — layers are allocated whole columns, so the
   2D-PE share can deviate from the FLOPs-proportional ideal;
2. *feature distribution* — features are spread over the column's
   MemHeavy tiles; a non-multiple count leaves tiles idle;
3. *array residue* — feature rows and output-feature batches that are
   not multiples of the array rows/lanes idle part of the array (array
   reconfigurability mitigates this);
4. *instruction overhead* — loop control and data-transfer instructions
   (a calibrated constant here).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.arch.chip import ChipConfig, ChipKind
from repro.arch.tiles import ArrayConfig, array_utilization
from repro.dnn.analysis import (
    Kernel,
    LayerStepProfile,
    Step,
    profile,
)
from repro.dnn.layers import ConvSpec, LayerKind
from repro.dnn.network import LayerNode
from repro.errors import MappingError

#: Calibrated fraction of array cycles doing useful work after loop
#: control / pointer arithmetic / data-movement instructions (the paper's
#: fourth utilization-loss factor: 0.42 -> 0.35 overall, i.e. ~0.83).
INSTRUCTION_OVERHEAD_FACTOR = 0.83

#: Winograd F(2x2, 3x3) reduces the multiplies of a 3x3 stride-1
#: convolution by 2.25x; transform overheads eat part of it, so the
#: realised array-FLOPs reduction is modelled at 1.8x (the ratio
#: Maxwell-era implementations achieved).  Sec 6.1: "SCALEDEEP
#: implementations currently do not use Winograd, and we do not find
#: any fundamental bottlenecks in doing so".
WINOGRAD_REALIZED_FACTOR = 1.8


@dataclass(frozen=True)
class UtilizationCascade:
    """The multiplicative utilization-loss factors for one layer step."""

    feature_distribution: float
    array_residue: float
    instruction_overhead: float

    @property
    def achieved(self) -> float:
        """Product of all factors: achieved / allocated 2D-PE FLOPs."""
        return (
            self.feature_distribution
            * self.array_residue
            * self.instruction_overhead
        )


@dataclass(frozen=True)
class TrafficSummary:
    """Bytes moved per image by one layer step, by link class."""

    comp_mem_bytes: float
    mem_mem_bytes: float
    ext_mem_bytes: float


@dataclass(frozen=True)
class StepCost:
    """Cost of one layer's FP, BP or WG step on its allocated columns."""

    layer: str
    step: Step
    columns: int
    compute_cycles: float  # 2D-PE array bound
    sfu_cycles: float  # MemHeavy SFU bound
    comp_mem_link_cycles: float
    mem_mem_link_cycles: float
    ext_mem_cycles: float
    utilization: UtilizationCascade
    traffic: TrafficSummary
    array_config: Optional[ArrayConfig] = None

    @property
    def cycles(self) -> float:
        """Pipeline-stage latency: the slowest overlapped subsystem."""
        return max(
            self.compute_cycles,
            self.sfu_cycles,
            self.comp_mem_link_cycles,
            self.mem_mem_link_cycles,
            self.ext_mem_cycles,
            1.0,
        )

    @property
    def bound_by(self) -> str:
        """Which subsystem limits this stage."""
        bounds = {
            "compute": self.compute_cycles,
            "sfu": self.sfu_cycles,
            "comp-mem-link": self.comp_mem_link_cycles,
            "mem-mem-link": self.mem_mem_link_cycles,
            "ext-mem": self.ext_mem_cycles,
        }
        return max(bounds, key=lambda k: bounds[k])


def _feature_distribution_util(features: int, tiles: int) -> float:
    """Factor 2: load imbalance when features don't divide over tiles."""
    per_tile = math.ceil(features / tiles)
    return features / (per_tile * tiles)


def _bytes_per_cycle(bandwidth_bytes_per_s: float, frequency_hz: float) -> float:
    return bandwidth_bytes_per_s / frequency_hz


def step_cost(
    node_frequency_hz: float,
    chip: ChipConfig,
    layer: LayerNode,
    step: Step,
    columns: int,
    dtype_bytes: int,
    weights_on_chip: bool,
    store_features_offchip: bool = True,
    instruction_overhead: float = INSTRUCTION_OVERHEAD_FACTOR,
    weight_reuse_batch: int = 1,
    step_tile_multiplier: int = 1,
    winograd: bool = False,
) -> StepCost:
    """Estimate the cost of one (layer, step) stage on ``columns`` columns.

    ``store_features_offchip`` models the training requirement that FP
    features of all layers are staged to external memory and fetched back
    for the WG step (Sec 3.2.3, "Nested Pipelining").

    ``weight_reuse_batch`` amortises weight streaming over a batch of
    inputs — the wheel's FC batching (Sec 3.3.1) fetches layer weights
    once per batch, dividing their traffic by the batch size.

    ``step_tile_multiplier`` widens the CompHeavy resources serving this
    step: during evaluation the BP and WG tiles also perform FP
    (Sec 6.1), i.e. a multiplier of 3.

    ``winograd`` applies the F(2x2, 3x3) arithmetic reduction to 3x3
    stride-1 convolutions — the future-work extension Sec 6.1 mentions.
    """
    if columns < 1:
        raise MappingError(
            f"layer {layer.name!r} needs at least one column, got {columns}"
        )
    if weight_reuse_batch < 1 or step_tile_multiplier < 1:
        raise MappingError(
            "weight_reuse_batch and step_tile_multiplier must be >= 1"
        )
    prof: LayerStepProfile = profile(layer, step, dtype_bytes)
    tiles = columns * chip.rows  # MemHeavy tiles / CompHeavy tiles per step
    comp_tiles = tiles * step_tile_multiplier
    comp = chip.comp_tile
    mem = chip.mem_tile
    weight_bytes = prof.weight_bytes / weight_reuse_batch

    # ------------------------------------------------------------------
    # Which tensor do this step's "features" refer to?
    #   FP computes output features; BP computes input errors; WG sweeps
    #   output positions to produce per-kernel gradients.
    # ------------------------------------------------------------------
    in_shape = layer.input_shapes[0] if layer.input_shapes else layer.output_shape
    out_shape = layer.output_shape
    if layer.kind is LayerKind.FC:
        # The FC input/error vector streams along the array rows.
        if step is Step.FP:
            features, feature_rows = out_shape.count, in_shape.elements
        elif step is Step.BP:
            features, feature_rows = in_shape.count, out_shape.elements
        else:
            features, feature_rows = out_shape.count, in_shape.elements
    elif step is Step.FP:
        features, feature_rows = out_shape.count, in_shape.height
    elif step is Step.BP:
        # BP runs one convolution per output-error feature (with rotated
        # kernels); partial input errors accumulate in the MemHeavy tiles,
        # so the parallelism is over the output features.
        features, feature_rows = out_shape.count, out_shape.height
    else:  # WG: one gradient tensor per output feature's kernels
        features, feature_rows = out_shape.count, in_shape.height

    # ------------------------------------------------------------------
    # Compute cycles on the 2D-PE arrays (ND_CONV / MATMUL kernels).
    # ------------------------------------------------------------------
    array_flops = prof.flops_by_kernel.get(Kernel.ND_CONV, 0) + prof.flops_by_kernel.get(
        Kernel.MATMUL, 0
    ) + prof.flops_by_kernel.get(Kernel.VEC_ELT_MUL, 0)
    if winograd and layer.kind is LayerKind.CONV:
        spec = layer.spec
        assert isinstance(spec, ConvSpec)
        if spec.kernel == 3 and spec.stride == 1:
            conv_part = prof.flops_by_kernel.get(Kernel.ND_CONV, 0)
            array_flops -= conv_part * (1.0 - 1.0 / WINOGRAD_REALIZED_FACTOR)
    if features >= comp_tiles:
        per_tile_features = math.ceil(features / comp_tiles)
        feature_util = features / (per_tile_features * comp_tiles)
        rows_per_tile = max(1, feature_rows)
    else:
        # STEP4: when there are fewer features than tiles, a MemHeavy
        # tile holds part of a feature (the initial-CONV-layer case) and
        # the feature's rows split across the tiles serving it.
        splits = max(1, comp_tiles // features)
        rows_per_tile = max(1, math.ceil(max(1, feature_rows) / splits))
        per_tile_features = 1
        feature_util = (features * max(1, feature_rows)) / (
            comp_tiles * rows_per_tile
        )
    if array_flops:
        array_cfg, array_util = comp.best_configuration(
            rows_per_tile, per_tile_features
        )
    else:
        array_cfg, array_util = None, 1.0

    cascade = UtilizationCascade(
        feature_distribution=feature_util,
        array_residue=array_util,
        instruction_overhead=instruction_overhead,
    )
    # Dot products execute on the FMA lanes; the 1D accumulator column
    # serves the partial-output accumulation and adds no MAC capacity.
    peak_per_cycle = comp_tiles * 2 * comp.fma_count
    compute_cycles = (
        array_flops / (peak_per_cycle * cascade.achieved)
        if array_flops
        else 0.0
    )

    # ------------------------------------------------------------------
    # SFU cycles on the MemHeavy tiles (accumulate / activation / samp).
    # ------------------------------------------------------------------
    sfu_flops = sum(
        prof.flops_by_kernel.get(k, 0)
        for k in (Kernel.ND_ACCUM, Kernel.ACT_FN, Kernel.SAMPLING)
    )
    sfu_cycles = sfu_flops / (tiles * mem.flops_per_cycle) if sfu_flops else 0.0

    # ------------------------------------------------------------------
    # Link traffic (per image, this step).
    # ------------------------------------------------------------------
    in_bytes = in_shape.elements * dtype_bytes
    out_bytes = out_shape.elements * dtype_bytes
    if layer.kind is LayerKind.CONV and array_flops:
        # Inputs re-stream once per output-feature batch within a tile;
        # one partial output per (input feature, output element) pair is
        # written to (and accumulated in) the right MemHeavy tile.
        spec = layer.spec
        assert isinstance(spec, ConvSpec)
        lanes = comp.cols * comp.lanes if array_cfg is None else (
            array_cfg.lanes * array_cfg.splits
        )
        batches = math.ceil(per_tile_features / max(1, lanes))
        partials = out_shape.elements * (in_shape.count // spec.groups)
        comp_mem_bytes = (in_bytes * batches + partials * dtype_bytes)
        # Accumulating partial outputs vertically to the home row takes
        # (rows - 1) hops and horizontally across the unit's columns
        # (columns - 1) hops, then outputs distribute to their home
        # tiles; inputs arrive from the previous layer's columns.
        mem_mem_bytes = (
            out_bytes * (chip.rows - 1 + max(0, columns - 1) + 1.0)
            + in_bytes
        )
    elif layer.kind is LayerKind.FC and array_flops:
        # Weights stream through the array once; features are tiny.
        comp_mem_bytes = float(in_bytes + out_bytes + weight_bytes)
        mem_mem_bytes = float(in_bytes + out_bytes)
    else:
        comp_mem_bytes = 0.0
        mem_mem_bytes = float(in_bytes + out_bytes)

    ext_bytes = 0.0
    if not weights_on_chip:
        ext_bytes += weight_bytes
    if store_features_offchip and layer.kind in (LayerKind.CONV, LayerKind.FC):
        # FP stages its outputs to external memory; WG fetches them back.
        if step is Step.FP:
            ext_bytes += out_bytes
        elif step is Step.WG:
            ext_bytes += in_bytes

    # ------------------------------------------------------------------
    # Link-bound cycle terms.  Each CompHeavy tile has two comp-mem links
    # (left/right); each MemHeavy tile has ~2 usable mem-mem links after
    # accounting for shared edges; external bandwidth is the chip's,
    # shared in proportion to the columns this layer owns.
    # ------------------------------------------------------------------
    comp_mem_bpc = _bytes_per_cycle(chip.links.comp_mem, node_frequency_hz)
    mem_mem_bpc = _bytes_per_cycle(chip.links.mem_mem, node_frequency_hz)
    ext_bpc = _bytes_per_cycle(
        chip.links.external_memory_total, node_frequency_hz
    )

    comp_mem_link_cycles = comp_mem_bytes / (comp_tiles * 2 * comp_mem_bpc)
    mem_mem_link_cycles = mem_mem_bytes / (tiles * 2 * mem_mem_bpc)
    ext_share = ext_bpc * columns / chip.cols
    ext_mem_cycles = ext_bytes / ext_share if ext_bytes else 0.0

    return StepCost(
        layer=layer.name,
        step=step,
        columns=columns,
        compute_cycles=compute_cycles,
        sfu_cycles=sfu_cycles,
        comp_mem_link_cycles=comp_mem_link_cycles,
        mem_mem_link_cycles=mem_mem_link_cycles,
        ext_mem_cycles=ext_mem_cycles,
        utilization=cascade,
        traffic=TrafficSummary(comp_mem_bytes, mem_mem_bytes, ext_bytes),
        array_config=array_cfg,
    )


def layer_stage_cycles(
    node_frequency_hz: float,
    chip: ChipConfig,
    layer: LayerNode,
    columns: int,
    dtype_bytes: int,
    weights_on_chip: bool,
    training: bool = True,
) -> float:
    """Worst-case stage latency across the steps a layer runs.

    During training, a layer's FP, BP and WG run on separate CompHeavy
    tiles as independent pipeline stages; the layer's contribution to the
    pipeline bottleneck is the slowest of the three.
    """
    steps = (Step.FP, Step.BP, Step.WG) if training else (Step.FP,)
    return max(
        step_cost(
            node_frequency_hz, chip, layer, step, columns, dtype_bytes,
            weights_on_chip, store_features_offchip=training,
        ).cycles
        for step in steps
    )
