"""The ScaleDeep ISA: instructions, programs, assembler."""

from repro.isa.instructions import (
    NUM_REGISTERS,
    Instruction,
    InstrGroup,
    OPCODE_GROUPS,
    OPERAND_NAMES,
    Opcode,
    make,
)
from repro.isa.program import BRANCH_OPCODES, Program
from repro.isa.assembler import assemble, disassemble

__all__ = [
    "BRANCH_OPCODES",
    "Instruction",
    "InstrGroup",
    "NUM_REGISTERS",
    "OPCODE_GROUPS",
    "OPERAND_NAMES",
    "Opcode",
    "Program",
    "assemble",
    "disassemble",
    "make",
]
