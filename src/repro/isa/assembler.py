"""Two-way text assembler for ScaleDeep programs.

The textual syntax matches :meth:`Instruction.__str__`::

    LDRI rd=1, value=24        ; loop counter
    NDCONV in_addr=0, in_port=0, ...
    HALT

Labels are supported for branch targets: a line ``label:`` names the next
instruction, and branch offsets may be written ``offset=@label`` — the
assembler converts them to PC-relative immediates.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ProgramError
from repro.isa.instructions import Instruction, Opcode, OPERAND_NAMES
from repro.isa.program import Program, BRANCH_OPCODES


def _parse_operands(opcode: Opcode, text: str) -> List[Tuple[str, str]]:
    pairs: List[Tuple[str, str]] = []
    text = text.strip()
    if not text:
        return pairs
    for chunk in text.split(","):
        if "=" not in chunk:
            raise ProgramError(
                f"{opcode.value}: operand {chunk.strip()!r} must be "
                "name=value"
            )
        name, value = chunk.split("=", 1)
        pairs.append((name.strip(), value.strip()))
    return pairs


def assemble(source: str, tile: str = "tile") -> Program:
    """Assemble textual ScaleDeep assembly into a validated Program."""
    labels: Dict[str, int] = {}
    parsed: List[Tuple[Opcode, List[Tuple[str, str]], str]] = []

    for raw_line in source.splitlines():
        line = raw_line.split(";", 1)
        comment = line[1].strip() if len(line) > 1 else ""
        body = line[0].strip()
        if not body:
            continue
        if body.endswith(":"):
            label = body[:-1].strip()
            if not label or label in labels:
                raise ProgramError(f"bad or duplicate label {label!r}")
            labels[label] = len(parsed)
            continue
        mnemonic, _, rest = body.partition(" ")
        try:
            opcode = Opcode(mnemonic.upper())
        except ValueError:
            raise ProgramError(f"unknown instruction {mnemonic!r}") from None
        parsed.append((opcode, _parse_operands(opcode, rest), comment))

    program = Program(tile=tile)
    for pc, (opcode, pairs, comment) in enumerate(parsed):
        operands: Dict[str, int] = {}
        for name, value in pairs:
            if value.startswith("@"):
                label = value[1:]
                if label not in labels:
                    raise ProgramError(f"undefined label {label!r}")
                if opcode not in BRANCH_OPCODES:
                    raise ProgramError(
                        f"label operand on non-branch {opcode.value}"
                    )
                operands[name] = labels[label] - (pc + 1)
            elif value.startswith("r") and value[1:].isdigit():
                # Register-indirect data operand (Fig 13 style).  Only
                # meaningful on data instructions; scalar instructions
                # name their registers with plain indices.
                from repro.sim.machine import reg_operand

                operands[name] = reg_operand(int(value[1:]))
            else:
                operands[name] = int(value, 0)
        names = OPERAND_NAMES[opcode]
        missing = [n for n in names if n not in operands]
        if missing:
            raise ProgramError(
                f"pc={pc} {opcode.value}: missing operands {missing}"
            )
        program.append(
            Instruction(
                opcode, tuple(operands[n] for n in names), comment
            )
        )
    program.validate()
    return program


def disassemble(program: Program) -> str:
    """Round-trippable textual form of a program (labels lowered)."""
    return "\n".join(str(instr) for instr in program)
