"""The ScaleDeep instruction set (paper Fig 8, Sec 3.2.2).

The ISA contains 28 instructions in five groups:

* scalar control instructions (loads, ALU ops, branches) executed on the
  CompHeavy tile's in-order scalar PE;
* coarse-grained data instructions (NDCONV, MATMUL) executed on the
  2D-PE array;
* MemHeavy offload instructions (activation functions, sampling,
  accumulation, element-wise multiply) executed on a connected MemHeavy
  tile's SFUs;
* MemHeavy data-transfer instructions (DMA loads/stores, pass-buffers);
* data-flow tracking instructions (MEMTRACK and its DMA variant) that
  implement the synchronization scheme of Sec 3.2.4.

Operands are named per-opcode; :data:`OPERAND_NAMES` documents the
signature the assembler and the functional engine agree on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.errors import ProgramError

#: Number of scalar registers per CompHeavy tile.  The compiled listings
#: in the paper's Fig 13 use registers up to r47; 64 is the power of two
#: that accommodates them.
NUM_REGISTERS = 64


class InstrGroup(enum.Enum):
    """The five instruction groups of Sec 3.2.2."""

    SCALAR = "scalar-control"
    COARSE = "coarse-grained-data"
    OFFLOAD = "memheavy-offload"
    TRANSFER = "memheavy-data-transfer"
    TRACK = "data-flow-track"


class Opcode(enum.Enum):
    """All 28 ScaleDeep instructions."""

    # --- scalar control (12) ------------------------------------------
    LDRI = "LDRI"        # load immediate into register
    MOVR = "MOVR"        # copy register
    ADDR = "ADDR"        # add registers
    ADDRI = "ADDRI"      # add immediate
    SUBR = "SUBR"        # subtract registers
    SUBRI = "SUBRI"      # subtract immediate
    MULR = "MULR"        # multiply registers
    BEQZ = "BEQZ"        # branch if zero
    BNEZ = "BNEZ"        # branch if not zero
    BGTZ = "BGTZ"        # branch if greater than zero
    BRANCH = "BRANCH"    # unconditional relative branch
    HALT = "HALT"        # end of program

    # --- coarse-grained data (2) --------------------------------------
    NDCONV = "NDCONV"    # batch convolution on the 2D-PE array
    MATMUL = "MATMUL"    # matrix multiplication on the 2D-PE array

    # --- MemHeavy offload (7) -----------------------------------------
    NDACTFN = "NDACTFN"        # activation function over a region
    NDACTBP = "NDACTBP"        # activation derivative (BP masking)
    NDSUBSAMP = "NDSUBSAMP"    # down-sampling (max/avg pooling)
    NDUPSAMP = "NDUPSAMP"      # error up-sampling during BP
    NDACCUM = "NDACCUM"        # accumulate one region into another
    VECMUL = "VECMUL"          # vector element-wise multiply (FC WG)
    WUPDATE = "WUPDATE"        # apply scaled gradient to weights (SGD)

    # --- MemHeavy data transfer (5) -------------------------------------
    DMALOAD = "DMALOAD"        # pull data into a MemHeavy tile
    DMASTORE = "DMASTORE"      # push data out of a MemHeavy tile
    PASSBUFF_RD = "PASSBUFF_RD"  # stream a region through the read FIFO
    PASSBUFF_WR = "PASSBUFF_WR"  # stream a region through the write FIFO
    PREFETCH = "PREFETCH"      # early external-memory weight fetch

    # --- data-flow track (2) ------------------------------------------
    MEMTRACK = "MEMTRACK"          # arm a tracker on an address range
    DMA_MEMTRACK = "DMA_MEMTRACK"  # arm a tracker on a remote tile's range


#: Group membership for every opcode.
OPCODE_GROUPS: Mapping[Opcode, InstrGroup] = {
    **{op: InstrGroup.SCALAR for op in (
        Opcode.LDRI, Opcode.MOVR, Opcode.ADDR, Opcode.ADDRI, Opcode.SUBR,
        Opcode.SUBRI, Opcode.MULR, Opcode.BEQZ, Opcode.BNEZ, Opcode.BGTZ,
        Opcode.BRANCH, Opcode.HALT,
    )},
    **{op: InstrGroup.COARSE for op in (Opcode.NDCONV, Opcode.MATMUL)},
    **{op: InstrGroup.OFFLOAD for op in (
        Opcode.NDACTFN, Opcode.NDACTBP, Opcode.NDSUBSAMP, Opcode.NDUPSAMP,
        Opcode.NDACCUM, Opcode.VECMUL, Opcode.WUPDATE,
    )},
    **{op: InstrGroup.TRANSFER for op in (
        Opcode.DMALOAD, Opcode.DMASTORE, Opcode.PASSBUFF_RD,
        Opcode.PASSBUFF_WR, Opcode.PREFETCH,
    )},
    **{op: InstrGroup.TRACK for op in (Opcode.MEMTRACK, Opcode.DMA_MEMTRACK)},
}

#: Named operand signature per opcode.  ``r*`` operands are register
#: indices; others are immediates.  Port operands select which connected
#: MemHeavy tile (or external memory channel) an address refers to.
OPERAND_NAMES: Mapping[Opcode, Tuple[str, ...]] = {
    Opcode.LDRI: ("rd", "value"),
    Opcode.MOVR: ("rd", "rs"),
    Opcode.ADDR: ("rd", "rs1", "rs2"),
    Opcode.ADDRI: ("rd", "rs", "value"),
    Opcode.SUBR: ("rd", "rs1", "rs2"),
    Opcode.SUBRI: ("rd", "rs", "value"),
    Opcode.MULR: ("rd", "rs1", "rs2"),
    Opcode.BEQZ: ("rs", "offset"),
    Opcode.BNEZ: ("rs", "offset"),
    Opcode.BGTZ: ("rs", "offset"),
    Opcode.BRANCH: ("offset",),
    Opcode.HALT: (),
    Opcode.NDCONV: (
        "in_addr", "in_port", "in_size", "kernel_addr", "kernel_size",
        "stride", "pad", "out_addr", "out_port", "is_accum",
    ),
    Opcode.MATMUL: (
        "in1_addr", "in1_port", "in1_size", "in2_addr", "in2_port",
        "in2_size", "out_addr", "out_port", "is_accum",
    ),
    Opcode.NDACTFN: (
        "fn_type", "in_addr", "port", "size", "out_addr", "out_port",
    ),
    Opcode.NDACTBP: (
        "fn_type", "err_addr", "port", "size", "out_addr", "out_port",
    ),
    Opcode.NDSUBSAMP: (
        "samp_type", "in_addr", "port", "in_size", "window", "stride",
        "out_addr", "out_port",
    ),
    Opcode.NDUPSAMP: (
        "samp_type", "in_addr", "port", "in_size", "window", "stride",
        "out_addr", "out_port",
    ),
    Opcode.NDACCUM: ("src_addr", "port", "size", "dst_addr"),
    Opcode.VECMUL: ("in1_addr", "in2_addr", "port", "size", "out_addr"),
    Opcode.WUPDATE: ("weight_addr", "grad_addr", "port", "size", "lr_num",
                     "lr_denom"),
    Opcode.DMALOAD: (
        "src_addr", "src_port", "dst_addr", "dst_port", "size", "is_accum",
    ),
    Opcode.DMASTORE: (
        "src_addr", "src_port", "dst_addr", "dst_port", "size", "is_accum",
    ),
    Opcode.PASSBUFF_RD: ("addr", "port", "size"),
    Opcode.PASSBUFF_WR: ("addr", "port", "size"),
    Opcode.PREFETCH: ("src_addr", "dst_addr", "dst_port", "size"),
    Opcode.MEMTRACK: ("addr", "port", "size", "num_updates", "num_reads"),
    Opcode.DMA_MEMTRACK: (
        "addr", "port", "size", "num_updates", "num_reads", "target",
    ),
}

assert len(Opcode) == 28, "the paper's ISA has exactly 28 instructions"
assert set(OPERAND_NAMES) == set(Opcode)
assert set(OPCODE_GROUPS) == set(Opcode)


@dataclass(frozen=True)
class Instruction:
    """One decoded ScaleDeep instruction."""

    opcode: Opcode
    operands: Tuple[int, ...] = ()
    comment: str = ""

    def __post_init__(self) -> None:
        expected = OPERAND_NAMES[self.opcode]
        if len(self.operands) != len(expected):
            raise ProgramError(
                f"{self.opcode.value} expects {len(expected)} operands "
                f"{expected}, got {len(self.operands)}"
            )

    @property
    def group(self) -> InstrGroup:
        return OPCODE_GROUPS[self.opcode]

    def operand(self, name: str) -> int:
        """Fetch an operand by its signature name."""
        names = OPERAND_NAMES[self.opcode]
        try:
            return self.operands[names.index(name)]
        except ValueError:
            raise ProgramError(
                f"{self.opcode.value} has no operand {name!r}; "
                f"signature is {names}"
            ) from None

    def named_operands(self) -> Dict[str, int]:
        return dict(zip(OPERAND_NAMES[self.opcode], self.operands))

    def __str__(self) -> str:
        ops = ", ".join(
            f"{n}={v}" for n, v in zip(OPERAND_NAMES[self.opcode],
                                       self.operands)
        )
        text = f"{self.opcode.value} {ops}".rstrip()
        return f"{text}  ; {self.comment}" if self.comment else text


def make(opcode: Opcode, comment: str = "", **operands: int) -> Instruction:
    """Build an instruction from keyword operands, in signature order."""
    names = OPERAND_NAMES[opcode]
    missing = [n for n in names if n not in operands]
    extra = [n for n in operands if n not in names]
    if missing or extra:
        raise ProgramError(
            f"{opcode.value}: missing operands {missing}, "
            f"unexpected {extra}; signature is {names}"
        )
    return Instruction(
        opcode, tuple(int(operands[n]) for n in names), comment
    )
