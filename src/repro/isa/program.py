"""Program container and validation for ScaleDeep ISA code.

A :class:`Program` holds the instruction stream for one CompHeavy tile
(each tile runs a single thread of execution whose program lives in its
instruction memory, Sec 3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import ProgramError
from repro.isa.instructions import (
    NUM_REGISTERS,
    Instruction,
    InstrGroup,
    Opcode,
    OPERAND_NAMES,
)

#: Branch instructions use PC-relative offsets, like the paper's listings.
BRANCH_OPCODES = frozenset({Opcode.BEQZ, Opcode.BNEZ, Opcode.BGTZ,
                            Opcode.BRANCH})

#: Operand names that denote register indices (for validation).
_REGISTER_OPERANDS = frozenset({"rd", "rs", "rs1", "rs2"})


@dataclass
class Program:
    """An instruction stream bound to one CompHeavy tile."""

    tile: str  # tile identifier, e.g. "cluster0.chip1.col3.row2.fp"
    instructions: List[Instruction] = field(default_factory=list)

    def append(self, instr: Instruction) -> int:
        """Append an instruction; returns its PC."""
        self.instructions.append(instr)
        return len(self.instructions) - 1

    def extend(self, instrs: Sequence[Instruction]) -> None:
        self.instructions.extend(instrs)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural well-formedness.

        Raises :class:`ProgramError` on: empty program, missing HALT,
        branch offsets leaving the program, or register indices out of
        range.
        """
        if not self.instructions:
            raise ProgramError(f"program for {self.tile} is empty")
        if self.instructions[-1].opcode is not Opcode.HALT:
            raise ProgramError(
                f"program for {self.tile} must end with HALT, ends with "
                f"{self.instructions[-1].opcode.value}"
            )
        for pc, instr in enumerate(self.instructions):
            names = OPERAND_NAMES[instr.opcode]
            for name, value in zip(names, instr.operands):
                if name in _REGISTER_OPERANDS and not (
                    0 <= value < NUM_REGISTERS
                ):
                    raise ProgramError(
                        f"{self.tile} pc={pc}: register r{value} out of "
                        f"range in {instr}"
                    )
            if instr.opcode in BRANCH_OPCODES:
                target = pc + 1 + instr.operand("offset")
                if not 0 <= target <= len(self.instructions):
                    raise ProgramError(
                        f"{self.tile} pc={pc}: branch target {target} "
                        f"outside program of length {len(self.instructions)}"
                    )

    # ------------------------------------------------------------------
    def counts_by_group(self) -> dict:
        """Instruction counts per group — useful for overhead accounting."""
        counts: dict = {}
        for instr in self.instructions:
            counts[instr.group] = counts.get(instr.group, 0) + 1
        return counts

    def disassemble(self) -> str:
        """Human-readable listing in the style of the paper's Fig 13."""
        lines = [f"--- Program for {self.tile} ---"]
        for pc, instr in enumerate(self.instructions):
            lines.append(f"{pc:>4}:  {instr}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Program({self.tile!r}, {len(self.instructions)} instrs)"
