"""Program container and validation for ScaleDeep ISA code.

A :class:`Program` holds the instruction stream for one CompHeavy tile
(each tile runs a single thread of execution whose program lives in its
instruction memory, Sec 3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import ProgramError
from repro.isa.instructions import (
    NUM_REGISTERS,
    Instruction,
    InstrGroup,
    Opcode,
    OPERAND_NAMES,
)

#: Branch instructions use PC-relative offsets, like the paper's listings.
BRANCH_OPCODES = frozenset({Opcode.BEQZ, Opcode.BNEZ, Opcode.BGTZ,
                            Opcode.BRANCH})

#: Operand names that denote register indices (for validation).
_REGISTER_OPERANDS = frozenset({"rd", "rs", "rs1", "rs2"})


@dataclass(frozen=True)
class SuperOp:
    """A fused run of data instructions inside one program.

    The fusion pass (:mod:`repro.compiler.passes.fuse`) proves that the
    half-open pc range ``[start, end)`` is a straight-line sequence of
    immediate-operand data instructions matching one of the known layer
    templates, and precomputes everything the engine would otherwise
    rediscover at decode time:

    * ``external_reads`` / ``external_writes``: the ``(port, addr,
      count)`` quads that touch tracker ranges shared with *other*
      instructions — these are still peeked and consumed one quad at a
      time so tracker counts advance exactly as in per-instruction
      execution.  Quads over ranges no tracker ever arms are dropped.
    * ``expire``: armed ``(port, addr, count)`` ranges accessed *only*
      from inside fused superops of this program — consuming them
      one-by-one is unobservable, so the superop force-expires them on
      completion (the per-instruction end state).
    * ``params``: kind-specific plain data driving the whole-plane
      numpy kernel (see the engine's superop decoder).

    Superops are advisory: an engine that does not understand a kind
    (or runs with fusion off) executes the covered instructions one at
    a time with identical results.
    """

    kind: str  # "load_run" | "conv_block" | "fc_block" | "pool_run"
    start: int  # first covered pc (inclusive)
    end: int  # one past the last covered pc
    external_reads: Tuple[Tuple[int, int, int], ...] = ()
    external_writes: Tuple[Tuple[int, int, int], ...] = ()
    expire: Tuple[Tuple[int, int, int], ...] = ()
    params: Tuple[Tuple[str, object], ...] = ()

    def param(self, name: str) -> object:
        for key, value in self.params:
            if key == name:
                return value
        raise KeyError(name)

    def __len__(self) -> int:
        return self.end - self.start


@dataclass
class Program:
    """An instruction stream bound to one CompHeavy tile."""

    tile: str  # tile identifier, e.g. "cluster0.chip1.col3.row2.fp"
    instructions: List[Instruction] = field(default_factory=list)
    #: Fused execution plan (optional, filled in by the fusion pass).
    #: Ordered, non-overlapping, and ignored by everything except the
    #: engine's fused fast path — disassembly and validation see only
    #: the instruction stream.
    superops: Tuple[SuperOp, ...] = ()

    def append(self, instr: Instruction) -> int:
        """Append an instruction; returns its PC."""
        self.instructions.append(instr)
        return len(self.instructions) - 1

    def extend(self, instrs: Sequence[Instruction]) -> None:
        self.instructions.extend(instrs)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural well-formedness.

        Raises :class:`ProgramError` on: empty program, missing HALT,
        branch offsets leaving the program, or register indices out of
        range.
        """
        if not self.instructions:
            raise ProgramError(f"program for {self.tile} is empty")
        if self.instructions[-1].opcode is not Opcode.HALT:
            raise ProgramError(
                f"program for {self.tile} must end with HALT, ends with "
                f"{self.instructions[-1].opcode.value}"
            )
        for pc, instr in enumerate(self.instructions):
            names = OPERAND_NAMES[instr.opcode]
            for name, value in zip(names, instr.operands):
                if name in _REGISTER_OPERANDS and not (
                    0 <= value < NUM_REGISTERS
                ):
                    raise ProgramError(
                        f"{self.tile} pc={pc}: register r{value} out of "
                        f"range in {instr}"
                    )
            if instr.opcode in BRANCH_OPCODES:
                target = pc + 1 + instr.operand("offset")
                if not 0 <= target <= len(self.instructions):
                    raise ProgramError(
                        f"{self.tile} pc={pc}: branch target {target} "
                        f"outside program of length {len(self.instructions)}"
                    )

    # ------------------------------------------------------------------
    def counts_by_group(self) -> dict:
        """Instruction counts per group — useful for overhead accounting."""
        counts: dict = {}
        for instr in self.instructions:
            counts[instr.group] = counts.get(instr.group, 0) + 1
        return counts

    def disassemble(self) -> str:
        """Human-readable listing in the style of the paper's Fig 13."""
        lines = [f"--- Program for {self.tile} ---"]
        for pc, instr in enumerate(self.instructions):
            lines.append(f"{pc:>4}:  {instr}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Program({self.tile!r}, {len(self.instructions)} instrs)"
