"""Compile a network to ScaleDeep ISA programs and run the engine.

Shows the full compiler/simulator loop of Sec 4: a tiny CNN is compiled
to one program per CompHeavy tile (following Fig 9's CONV-FP recipe and
Fig 13's code-generation phase), the programs execute on the functional
engine with MEMTRACK synchronization, and the result is checked against
the numpy golden model.

Run:  python examples/isa_engine_demo.py
"""

import numpy as np

from repro.compiler.codegen import compile_forward
from repro.dnn.zoo import tiny_cnn
from repro.functional import ReferenceModel


def main() -> None:
    net = tiny_cnn(num_classes=5, in_size=12)
    model = ReferenceModel(net, seed=3)
    compiled = compile_forward(net, model, rows=2)

    print(
        f"compiled {net.name}: {len(compiled.programs)} tile programs, "
        f"{compiled.instruction_count} instructions total\n"
    )
    # Show the first convolution tile's program, Fig 13 style.
    listing = compiled.programs[0].disassemble().splitlines()
    print("\n".join(listing[:18]))
    if len(listing) > 18:
        print(f"... ({len(listing) - 18} more lines)\n")

    rng = np.random.default_rng(0)
    shape = net.input.output_shape
    image = rng.normal(
        0, 1, (shape.count, shape.height, shape.width)
    ).astype(np.float32)

    golden = model.forward(image)
    engine_out, report = compiled.run(image)

    print(f"engine run: {report.describe()}")
    print(f"golden model output: {np.array2string(golden, precision=4)}")
    print(f"engine output:       {np.array2string(engine_out, precision=4)}")
    err = float(np.abs(engine_out - golden).max())
    print(f"max |engine - golden| = {err:.2e}")
    assert err < 1e-4, "engine diverged from the golden model!"
    print("engine matches the golden model.")

    # STEP4 made concrete: where every tensor lives (first tiles shown).
    print()
    memory_map = compiled.partition.memory_map().splitlines()
    print("\n".join(memory_map[:14]))
    if len(memory_map) > 14:
        print(f"... ({len(memory_map) - 14} more lines)")


if __name__ == "__main__":
    main()
