"""Run full SGD training on the functional ScaleDeep engine.

The complete loop the paper builds hardware for: forward propagation,
backpropagation with rotated kernels and activation masking, weight
gradients, and in-place SGD updates — every step executed as compiled
ScaleDeep ISA programs on the engine, synchronised only by MEMTRACK
data-flow trackers, with loss tracked against the numpy golden model.

Run:  python examples/train_on_engine.py
"""

import numpy as np

from repro.compiler.codegen_training import compile_training
from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation, PoolMode
from repro.functional import ReferenceModel, make_synthetic_dataset


def build_net():
    b = NetworkBuilder("EngineCNN")
    b.input(2, 8)
    b.conv(4, kernel=3, pad=1, name="conv1")
    b.pool(2, mode=PoolMode.AVG, name="pool1")
    b.conv(6, kernel=3, pad=1, name="conv2")
    b.fc(3, activation=Activation.SOFTMAX, name="fc")
    return b.build()


def main() -> None:
    net = build_net()
    model = ReferenceModel(net, seed=1)
    compiled = compile_training(net, model, rows=2, learning_rate=(5, 100))
    print(
        f"compiled {net.name} for training: "
        f"{len(compiled.forward.programs)} tile programs, "
        f"{compiled.instruction_count} instructions"
    )

    images, labels = make_synthetic_dataset(
        net, samples=24, num_classes=3, seed=2
    )
    print("\nstep  label  loss    correct  tracker-blocks")
    correct = 0
    for step, (image, label) in enumerate(zip(images, labels)):
        out, loss, report = compiled.train_step(
            image.astype(np.float32), int(label)
        )
        hit = int(out.argmax()) == int(label)
        correct += hit
        if step % 4 == 0 or step == len(images) - 1:
            print(
                f"{step:>4}  {int(label):>5}  {loss:<7.3f} "
                f"{str(hit):<8} {report.blocked_reads}"
            )
    print(f"\nrunning accuracy while training: {correct / len(images):.2f}")

    # Second pass (weights now trained, still updating).
    second = sum(
        int(compiled.train_step(img.astype(np.float32), int(lbl))[0]
            .argmax()) == int(lbl)
        for img, lbl in zip(images, labels)
    )
    print(f"second-epoch accuracy on the engine: {second / len(images):.2f}")

    # Minibatch-accumulating variant (the Sec 2.2 semantics): gradients
    # add across the minibatch, the weights update once at the boundary.
    print("\nminibatch-accumulating engine training (batch 8):")
    net2 = build_net()
    model2 = ReferenceModel(net2, seed=2)
    batched = compile_training(
        net2, model2, rows=2, learning_rate=(10, 100), minibatch=8
    )
    for epoch in range(3):
        losses = []
        for start in range(0, len(images), 8):
            loss, _ = batched.train_minibatch(
                images[start:start + 8], labels[start:start + 8]
            )
            losses.append(loss)
        print(f"  epoch {epoch}: mean minibatch loss "
              f"{sum(losses) / len(losses):.3f}")


if __name__ == "__main__":
    main()
