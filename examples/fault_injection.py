"""Fault injection and fault-aware remapping, end to end.

Samples deterministic fault masks at increasing rates, remaps AlexNet
around the dead tiles with the STEP1-6 compiler, and reports how
throughput degrades until the node runs out of healthy columns
(``UnmappableError``).  Also demonstrates the engine watchdog killing a
hung simulation with a structured, per-tile timeout.

Run:  python examples/fault_injection.py
"""

from repro.arch import single_precision_node
from repro.bench import Table
from repro.dnn import zoo
from repro.errors import SimulationTimeout, UnmappableError
from repro.faults import ALL_KINDS, FaultSpec, sample_faults
from repro.isa import assemble
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.perf import simulate


def degradation_curve() -> None:
    net = zoo.load("AlexNet")
    node = single_precision_node()
    baseline = simulate(net, node)

    table = Table(
        f"{net.name}: throughput vs fault rate (seed 7, all kinds)",
        ["rate", "faults", "remapped", "train img/s", "vs healthy"],
    )
    for rate in (0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 0.9):
        spec = FaultSpec(rate=rate, seed=7, kinds=ALL_KINDS)
        mask = sample_faults(spec, node)
        try:
            result = simulate(net, node, faults=mask)
        except UnmappableError as exc:
            table.add(f"{rate:g}", mask.fault_count, "-", "UNMAPPABLE",
                      "-")
            print(table.render())
            print(f"\ncapacity exhausted at rate {rate:g}: {exc}")
            return
        table.add(
            f"{rate:g}",
            mask.fault_count,
            result.mapping.remapped_columns,
            f"{result.training_images_per_s:,.0f}",
            f"{result.training_images_per_s / baseline.training_images_per_s:.2f}x",
        )
    print(table.render())


def watchdog_demo() -> None:
    from repro.arch.presets import conv_chip

    machine = Machine(conv_chip(), 3, 2)
    machine.load_program(assemble(
        """
        loop:
        BRANCH offset=@loop
        HALT
        """,
        tile="spin",
    ))
    try:
        Engine(machine, max_rounds=10**9, wall_clock_limit=0.1).run()
    except SimulationTimeout as exc:
        blocked = [t["tile"] for t in exc.snapshot if not t["halted"]]
        print(f"\nwatchdog fired: {str(exc).splitlines()[0]}")
        print(f"tiles still running at timeout: {blocked}")


def main() -> None:
    degradation_curve()
    watchdog_demo()


if __name__ == "__main__":
    main()
