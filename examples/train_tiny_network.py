"""Train a small CNN with the functional substrate.

Exercises the exact computation ScaleDeep accelerates — the FP/BP/WG
steps of Fig 3 with minibatch gradient accumulation — on a synthetic
classification task, and reports per-epoch loss and accuracy.

Run:  python examples/train_tiny_network.py
"""

from repro.dnn.zoo import tiny_cnn
from repro.functional import (
    ReferenceModel,
    SGDTrainer,
    make_synthetic_dataset,
)


def main() -> None:
    net = tiny_cnn(num_classes=4, in_size=16)
    print(net.describe())

    model = ReferenceModel(net, seed=1)
    print(f"\nparameters: {model.parameter_count():,}")

    train_x, train_y = make_synthetic_dataset(
        net, samples=96, num_classes=4, seed=2
    )
    test_x, test_y = make_synthetic_dataset(
        net, samples=32, num_classes=4, seed=99
    )

    trainer = SGDTrainer(model, learning_rate=0.05, batch_size=8, seed=3)
    print("\nepoch  loss    train-acc  test-acc")
    for epoch in range(6):
        stats = trainer.train_epoch(train_x, train_y, epoch)
        test_acc = trainer.evaluate(test_x, test_y)
        print(
            f"{stats.epoch:>5}  {stats.mean_loss:<7.3f} "
            f"{stats.accuracy:<10.2f} {test_acc:.2f}"
        )


if __name__ == "__main__":
    main()
