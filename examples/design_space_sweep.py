"""Design-space exploration around the Fig 14 operating point.

Uses the DSE module to sweep the ConvLayer grid and CompHeavy lane
count, re-mapping and re-simulating two conv-bound workloads at every
point, with power estimated from the Fig 14 per-tile constants, and
prints the performance/power Pareto frontier — the Sec 3.2.5 tuning
study, automated.

Run:  python examples/design_space_sweep.py
"""

from repro.arch.dse import default_grid, pareto_front, sweep
from repro.bench import Table
from repro.dnn import zoo


def main() -> None:
    workloads = {
        "GoogLeNet": zoo.load("GoogLeNet"),
        "VGG-A": zoo.load("VGG-A"),
    }
    points = default_grid(rows=(4, 6, 8), cols=(12, 16, 20),
                          lanes=(2, 4, 8), mem_kb=(512,))
    results = sweep(workloads, points)
    front = {r.point for r in pareto_front(results)}

    table = Table(
        "Design-space sweep (ConvLayer rows x cols, lanes)",
        ["config", "peak TFLOP/s", "power W", "GoogLeNet img/s",
         "VGG-A img/s", "img/s/W", "Pareto"],
    )
    for r in sorted(results, key=lambda r: r.estimated_power_w):
        table.add(
            r.point.label,
            f"{r.peak_tflops:.0f}",
            f"{r.estimated_power_w:.0f}",
            f"{r.throughput['GoogLeNet']:,.0f}",
            f"{r.throughput['VGG-A']:,.0f}",
            f"{r.throughput_per_watt:.1f}",
            "*" if r.point in front else "",
        )
    table.show()
    print(
        "\n'6x16 l4 m512K' is the paper's published operating point "
        "(Fig 14); '*' marks the throughput/power Pareto frontier."
    )


if __name__ == "__main__":
    main()
