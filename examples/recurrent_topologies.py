"""RNN / LSTM / autoencoder on ScaleDeep (the paper's Sec 1 claim).

Builds the recurrent and unsupervised topologies as unrolled dataflow
graphs, trains the RNN functionally on a synthetic sequence task, maps
all three onto the ScaleDeep node through the same compiler and
simulator as the CNN suite — and finally compiles a full LSTM cell to
ScaleDeep ISA programs and runs it on the functional engine.

Run:  python examples/recurrent_topologies.py
"""

import numpy as np

from repro import simulate, single_precision_node
from repro.bench import Table, fmt_count
from repro.compiler.codegen_dag import compile_dag_forward
from repro.dnn.recurrent import autoencoder, unrolled_lstm, unrolled_rnn
from repro.functional import (
    ReferenceModel,
    SGDTrainer,
    make_synthetic_dataset,
)


def main() -> None:
    node = single_precision_node()
    nets = [
        unrolled_rnn(input_size=16, hidden_size=32, timesteps=4),
        unrolled_lstm(input_size=16, hidden_size=32, timesteps=4),
        autoencoder(input_size=64, bottleneck=8, depth=3),
    ]

    table = Table(
        "Non-CNN topologies mapped onto ScaleDeep",
        ["network", "layers", "weights", "FC cols", "train img/s",
         "PE util"],
    )
    for net in nets:
        result = simulate(net, node)
        table.add(
            net.name, len(net), fmt_count(net.weight_count),
            result.mapping.fc_columns,
            f"{result.training_images_per_s:,.0f}",
            f"{result.pe_utilization:.2f}",
        )
    table.show()

    print("\nTraining the unrolled RNN on a synthetic sequence task:")
    net = unrolled_rnn(input_size=8, hidden_size=16, timesteps=4,
                       num_classes=3)
    model = ReferenceModel(net, seed=1)
    x, y = make_synthetic_dataset(net, samples=60, num_classes=3, seed=2)
    trainer = SGDTrainer(model, learning_rate=0.1, batch_size=10, seed=3)
    for epoch in range(5):
        stats = trainer.train_epoch(x, y, epoch)
        print(
            f"  epoch {stats.epoch}: loss {stats.mean_loss:.3f}, "
            f"accuracy {stats.accuracy:.2f}"
        )

    print("\nLSTM cell as compiled ScaleDeep ISA programs on the engine:")
    lstm = unrolled_lstm(input_size=4, hidden_size=6, timesteps=3,
                         num_classes=3)
    model = ReferenceModel(lstm, seed=0)
    compiled = compile_dag_forward(lstm, model, rows=2)
    shape = lstm.input.output_shape
    seq = np.random.default_rng(7).normal(
        0, 1, (shape.count, shape.height, shape.width)
    ).astype(np.float32)
    golden = model.forward(seq)
    engine_out, report = compiled.run(seq)
    print(f"  {len(compiled.programs)} tile programs, {report.describe()}")
    print(f"  max |engine - golden| = "
          f"{float(np.abs(engine_out - golden).max()):.2e}")


if __name__ == "__main__":
    main()
