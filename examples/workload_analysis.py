"""Workload analysis of any benchmark network (paper Sec 2.3).

Prints the per-layer-class compute/data breakdown (Fig 4) and the
kernel-level summary (Fig 5) for a chosen network.

Run:  python examples/workload_analysis.py [network]
"""

import sys

from repro.bench import Table, fmt_count
from repro.dnn import zoo
from repro.dnn.analysis import (
    Kernel,
    LayerClass,
    evaluation_flops,
    kernel_summary,
    layer_class_summary,
    training_flops,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "OF-Fast"
    net = zoo.load(name)

    print(
        f"{net.name}: {evaluation_flops(net) / 1e9:.2f} GFLOPs/evaluation, "
        f"{training_flops(net) / 1e9:.2f} GFLOPs/training iteration"
    )

    classes = layer_class_summary(net)
    total = sum(s.flops_total for s in classes.values())
    table = Table(
        f"Layer-class breakdown of {net.name} (Fig 4 style)",
        ["class", "layers", "FLOPs %", "B/F", "features", "weights"],
    )
    for cls in LayerClass:
        if cls not in classes:
            continue
        s = classes[cls]
        table.add(
            cls.value, len(s.layers),
            f"{100 * s.flops_total / total:.1f}",
            f"{s.bytes_per_flop_fp_bp:.4f}",
            fmt_count(s.feature_bytes, "B"),
            fmt_count(s.weight_bytes, "B"),
        )
    table.show()

    kernels = kernel_summary([net])
    table = Table(
        f"Kernel summary of {net.name} (Fig 5 style)",
        ["kernel", "FLOPs %", "Bytes/FLOP"],
    )
    for kernel in Kernel:
        frac, bf = kernels[kernel]
        table.add(kernel.value, f"{100 * frac:.2f}", f"{bf:.3f}")
    table.show()


if __name__ == "__main__":
    main()
