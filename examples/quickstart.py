"""Quickstart: map a benchmark DNN onto ScaleDeep and simulate it.

Builds AlexNet, maps it onto the paper's single-precision node (7032
tiles, 680 TFLOP/s peak), and prints the mapping, throughput,
utilization and power — the numbers behind Figs 16, 20 and 21.

Run:  python examples/quickstart.py [network]
"""

import sys

from repro import simulate, single_precision_node, zoo


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "AlexNet"
    net = zoo.load(name)
    node = single_precision_node()

    print(node.describe())
    print()
    print(net.describe())
    print()

    result = simulate(net, node)
    print(result.mapping.describe())
    print()
    print(result.describe())
    print()
    print("Link utilization:")
    for link, value in result.link_utilization.as_dict().items():
        print(f"  {link:<10} {value:.2f}")
    print(
        f"Average power: {result.average_power.total_w:.0f} W "
        f"(logic {result.average_power.logic_w:.0f}, "
        f"memory {result.average_power.memory_w:.0f}, "
        f"interconnect {result.average_power.interconnect_w:.0f})"
    )


if __name__ == "__main__":
    main()
