"""Visualise the nested pipeline of Fig 10 for a mapped network.

Schedules a stream of images through AlexNet's inter-layer pipeline
(FP stages forward, BP+WG stages in reverse) and prints the ASCII
Gantt chart, the fill latency, the steady-state initiation interval
and the pipeline speedup over serial execution.

Run:  python examples/pipeline_timeline.py [network] [images]
"""

import sys

from repro import map_network, single_precision_node, zoo
from repro.sim.timeline import nested_pipeline


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "AlexNet"
    images = int(sys.argv[2]) if len(sys.argv) > 2 else 6

    mapping = map_network(zoo.load(name), single_precision_node())
    timeline = nested_pipeline(mapping, images=images, training=True)

    print(timeline.render(width=72))
    print()
    bottleneck = timeline.bottleneck
    print(f"fill latency:        {timeline.fill_latency:,.0f} cycles")
    print(
        f"initiation interval: {timeline.initiation_interval:,.0f} cycles "
        f"(bottleneck stage {bottleneck.name})"
    )
    print(f"pipeline speedup:    {timeline.speedup_vs_serial():.1f}x "
          f"over serial execution")
    busiest = max(
        range(len(timeline.stages)), key=timeline.occupancy
    )
    print(
        f"busiest stage:       {timeline.stages[busiest].name} "
        f"({timeline.occupancy(busiest):.0%} occupied)"
    )


if __name__ == "__main__":
    main()
