"""Figure 16: single-precision training & evaluation performance.

Regenerates the figure's series: training images/s, evaluation images/s
and 2D-PE utilization for all 11 benchmarks, plus the columns each
network occupies (the 'Cols' row under the x-axis).
"""

import statistics

import pytest

from repro.bench import Table, fmt_rate, suite_results
from repro.dnn import zoo

#: The paper's 'Cols' row (columns per network copy).
PAPER_COLS = {
    "AlexNet": 16, "ZF": 10, "ResNet18": 32, "GoogLeNet": 32, "CNN-S": 16,
    "OF-Fast": 16, "ResNet34": 64, "OF-Acc": 21, "VGG-A": 64,
    "VGG-D": 256, "VGG-E": 256,
}


def aggregate(results):
    return {
        name: (
            r.training_images_per_s,
            r.evaluation_images_per_s,
            r.pe_utilization,
            r.mapping.conv_columns_per_copy,
        )
        for name, r in results.items()
    }


def test_fig16_sp_throughput(benchmark, sp_results):
    rows = benchmark(aggregate, sp_results)

    table = Table(
        "Figure 16 - Single precision: training & evaluation performance",
        ["network", "train img/s", "eval img/s", "eval/train",
         "PE util", "cols (paper)"],
    )
    for name, (train, evaln, util, cols) in rows.items():
        table.add(
            name, fmt_rate(train), fmt_rate(evaln),
            f"{evaln / train:.2f}x", f"{util:.2f}",
            f"{cols} ({PAPER_COLS[name]})",
        )
    geo_util = statistics.geometric_mean(r[2] for r in rows.values())
    table.add("GeoMean", "", "", "", f"{geo_util:.2f}", "")
    table.show()

    for name, (train, evaln, util, cols) in rows.items():
        # Training throughput in the thousands of images/s (log axis of
        # the figure spans 512 - 131072).
        assert 512 < train < 262144, name
        # Evaluation faster than training by a factor around 3.
        assert 2.0 < evaln / train < 4.3, name
        # Column footprints within 2x of the paper's.
        assert cols <= 2 * PAPER_COLS[name], name
        assert cols >= PAPER_COLS[name] / 2, name
    # Overall 2D-PE utilization near the paper's 0.35 average.
    assert 0.2 < geo_util < 0.5
    # Throughput ordering: the largest network is the slowest.
    assert rows["VGG-E"][0] == min(r[0] for r in rows.values())
