"""Figure 19: AlexNet layer-wise compute utilization cascade.

Regenerates the per-layer table: columns allocated, 2D-PEs vs the
FLOPs-ideal share, and the multiplicative utilization losses — column
granularity, feature distribution, array residue, instruction overhead —
whose suite-wide cascade the paper reports as 0.68 -> 0.64 -> 0.42 ->
0.35.
"""

import statistics

from repro.bench import Table, cached_mapping
from repro.sim.perf import utilization_report


def compute_report():
    return utilization_report(cached_mapping("AlexNet"))


def test_fig19_alexnet_utilization(benchmark):
    report = benchmark(compute_report)

    table = Table(
        "Figure 19 - AlexNet: compute utilization by layer",
        ["unit", "cols", "2D-PEs", "ideal PEs", "col peak util",
         "feat dist", "array residue", "achieved"],
    )
    for row in report:
        table.add(
            row.unit, row.columns, row.pes, f"{row.ideal_pes:.0f}",
            f"{row.column_peak_util:.2f}", f"{row.feature_distribution:.2f}",
            f"{row.array_residue:.2f}", f"{row.achieved:.2f}",
        )
    table.show()

    units = {r.unit: r for r in report}
    assert set(units) == {"conv1", "conv2", "conv3", "conv4", "conv5"}

    # The cascade: every loss factor is real (none collapses to ~0) and
    # achieved utilization sits in the paper's per-layer band
    # (0.48-0.66 achieved for AlexNet's CONV layers).
    for row in report:
        assert row.feature_distribution > 0.5, row.unit
        assert row.array_residue > 0.3, row.unit
        assert 0.2 < row.achieved < 0.95, row.unit

    mean_achieved = statistics.mean(r.achieved for r in report)
    assert 0.3 < mean_achieved < 0.8

    # Column granularity: allocated shares deviate from ideal (that is
    # the point of the figure), but not absurdly.
    for row in report:
        assert 0.4 < row.column_peak_util < 2.5, row.unit
