"""Figure 4: compute/data breakdown of OverFeat by layer class.

Regenerates the table: per class (initial CONV, mid CONV, FC, SAMP) the
share of FP+BP FLOPs, the Bytes/FLOP ratio, and the feature/weight
storage — the heterogeneity argument the whole architecture rests on.
"""

import pytest

from repro.bench import Table, fmt_count
from repro.dnn import zoo
from repro.dnn.analysis import LayerClass, layer_class_summary


def compute_summary():
    return layer_class_summary(zoo.overfeat_fast())


def test_fig04_overfeat_breakdown(benchmark):
    summary = benchmark(compute_summary)

    total = sum(s.flops_total for s in summary.values())
    table = Table(
        "Figure 4 - OverFeat: compute and data by layer class",
        ["class", "layers", "FLOPs %", "B/F (FP+BP)", "feat bytes",
         "weight bytes"],
    )
    for cls in (LayerClass.INITIAL_CONV, LayerClass.MID_CONV,
                LayerClass.FC, LayerClass.SAMP):
        s = summary[cls]
        table.add(
            cls.value,
            len(s.layers),
            f"{100 * s.flops_total / total:.1f}",
            f"{s.bytes_per_flop_fp_bp:.4f}",
            fmt_count(s.feature_bytes, "B"),
            fmt_count(s.weight_bytes, "B"),
        )
    table.show()

    # Paper values: initial CONV ~16% FLOPs at ~0.006 B/F; mid CONV ~80%
    # at ~0.015; FC ~4% at ~2; SAMP ~0.1% at ~5.
    frac = {c: s.flops_total / total for c, s in summary.items()}
    bf = {c: s.bytes_per_flop_fp_bp for c, s in summary.items()}
    assert 0.08 < frac[LayerClass.INITIAL_CONV] < 0.30
    assert 0.55 < frac[LayerClass.MID_CONV] < 0.90
    assert frac[LayerClass.FC] < 0.15
    assert frac[LayerClass.SAMP] < 0.005
    assert bf[LayerClass.INITIAL_CONV] == pytest.approx(0.006, abs=0.006)
    assert bf[LayerClass.MID_CONV] == pytest.approx(0.015, abs=0.012)
    assert bf[LayerClass.FC] == pytest.approx(2.0, rel=0.25)
    assert bf[LayerClass.SAMP] == pytest.approx(5.0, rel=0.10)
    # The B/F spread across classes spans ~3 orders of magnitude.
    assert bf[LayerClass.SAMP] / bf[LayerClass.INITIAL_CONV] > 300
