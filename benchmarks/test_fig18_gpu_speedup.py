"""Figure 18: ScaleDeep speedup over TitanX software stacks.

Regenerates the iso-power comparison: one ScaleDeep chip cluster
(~325 W) against a TitanX (~320 W) running cuDNN-R2, Nervana Neon,
TensorFlow and the Winograd variants, on the four networks the paper
plots (AlexNet, GoogLeNet, OverFeat, VGG-A).

Paper bands: 22-28x over cuDNN-R2, 6-15x over Nervana, 7-11x over
TensorFlow, 5-11x over the Winograd implementations.
"""

import statistics

from repro.baselines.gpu import GpuFramework, all_framework_rates
from repro.bench import Table, cached_simulation
from repro.dnn import zoo

#: The four networks of Fig 18.  "OverFeat" is taken as the accurate
#: model (the variant whose workload Fig 4 analyses in depth).
FIG18_NETWORKS = ("AlexNet", "GoogLeNet", "OF-Acc", "VGG-A")

PAPER_BANDS = {
    GpuFramework.CUDNN_R2: (22, 28),
    GpuFramework.NERVANA: (6, 15),
    GpuFramework.TENSORFLOW: (7, 11),
    GpuFramework.CUDNN_WINOGRAD: (5, 11),
    GpuFramework.NERVANA_WINOGRAD: (5, 11),
}


def compute_speedups():
    speedups = {}
    for name in FIG18_NETWORKS:
        result = cached_simulation(name)
        cluster_rate = (
            result.training_images_per_s
            / result.mapping.node.cluster_count
        )
        gpu = all_framework_rates(zoo.load(name))
        speedups[name] = {
            fw: cluster_rate / rate for fw, rate in gpu.items()
        }
    return speedups


def test_fig18_gpu_speedup(benchmark):
    speedups = benchmark(compute_speedups)

    table = Table(
        "Figure 18 - ScaleDeep chip-cluster speedup vs TitanX (training)",
        ["network"] + [fw.value for fw in GpuFramework],
    )
    for name, row in speedups.items():
        table.add(name, *(f"{row[fw]:.1f}x" for fw in GpuFramework))
    geo = {
        fw: statistics.geometric_mean(
            speedups[n][fw] for n in FIG18_NETWORKS
        )
        for fw in GpuFramework
    }
    table.add("GeoMean", *(f"{geo[fw]:.1f}x" for fw in GpuFramework))
    table.show()

    # Geomean speedups land in (a 1.5x-relaxed version of) the paper's
    # bands, and the relative ordering of the stacks holds.
    for fw, (lo, hi) in PAPER_BANDS.items():
        assert geo[fw] > lo / 1.5, (fw, geo[fw])
        assert geo[fw] < hi * 1.6, (fw, geo[fw])
    assert geo[GpuFramework.CUDNN_R2] == max(geo.values())
    # Winograd closes part of the gap for its base framework.
    assert geo[GpuFramework.NERVANA_WINOGRAD] < geo[GpuFramework.NERVANA]
    assert geo[GpuFramework.CUDNN_WINOGRAD] < geo[GpuFramework.CUDNN_R2]
    # ScaleDeep always wins.
    for row in speedups.values():
        for value in row.values():
            assert value > 1.0
