"""Extension study: validating the analytical model against the engine.

The paper validates its C++ simulator with RTL synthesis (Sec 5); this
reproduction validates its fast analytical model against its detailed
functional engine — the two independent performance models must rank
workloads identically and agree within a small factor on
compute-dominated networks, or every figure built on the analytical
model would be suspect.
"""

from repro.bench import Table
from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation, PoolMode
from repro.dnn.zoo import tiny_cnn, tiny_mlp
from repro.sim.validation import cross_validate, rank_agreement


def _wide():
    b = NetworkBuilder("WideCNN")
    b.input(3, 16)
    b.conv(12, kernel=3, pad=1)
    b.pool(2, mode=PoolMode.AVG)
    b.conv(16, kernel=3, pad=1)
    b.fc(6, activation=Activation.SOFTMAX)
    return b.build()


def _deep():
    b = NetworkBuilder("DeepCNN")
    b.input(2, 16)
    for _ in range(4):
        b.conv(8, kernel=3, pad=1)
    b.pool(2, mode=PoolMode.AVG)
    b.fc(4, activation=Activation.SOFTMAX)
    return b.build()


def compute_rows():
    nets = {
        "TinyMLP": tiny_mlp(num_classes=4, in_features=8, hidden=12),
        "TinyCNN-8": tiny_cnn(num_classes=4, in_size=8),
        "TinyCNN-16": tiny_cnn(num_classes=4, in_size=16),
        "WideCNN": _wide(),
        "DeepCNN": _deep(),
    }
    return cross_validate(nets, rows=2)


def test_ext_simulator_validation(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)

    table = Table(
        "Analytical model vs functional engine (forward pass, 1 image)",
        ["network", "engine cycles", "analytical cycles", "ratio",
         "instructions"],
    )
    for r in rows:
        table.add(
            r.network, f"{r.engine_cycles:,}",
            f"{r.analytical_cycles:,.0f}", f"{r.ratio:.2f}",
            f"{r.instructions:,}",
        )
    table.add("rank agreement", f"{rank_agreement(rows):.2f}", "", "", "")
    table.show()

    # Near-perfect concordance: at most one close pair may flip (the
    # engine's per-instruction overheads advantage deep-but-thin
    # networks relative to the streaming model).
    assert rank_agreement(rows) >= 0.8
    compute_dominated = [r for r in rows if r.analytical_cycles > 100]
    assert compute_dominated
    for r in compute_dominated:
        assert 0.3 < r.ratio < 3.5, r.network
