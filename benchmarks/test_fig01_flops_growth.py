"""Figure 1: scalar FLOPs per network evaluation, 2012 -> 2015.

Regenerates the bar chart data: billions of FLOPs for one forward
evaluation of each benchmark, ordered by size, showing the >10x growth
between the 2012 ImageNet winner and the 2014-15 entries.
"""

from repro.bench import Table
from repro.dnn import zoo
from repro.dnn.analysis import evaluation_flops

#: Presentation order of Fig 1 (smallest to largest).
FIG1_ORDER = [
    "AlexNet", "ZF", "ResNet18", "GoogLeNet", "CNN-S", "OF-Fast",
    "ResNet34", "OF-Acc", "VGG-A", "VGG-D", "VGG-E",
]


def compute_rows():
    return {
        name: evaluation_flops(zoo.load(name)) / 1e9 for name in FIG1_ORDER
    }


def test_fig01_flops_growth(benchmark):
    rows = benchmark(compute_rows)

    table = Table(
        "Figure 1 - DNN evaluation: scalar FLOPs (billions)",
        ["network", "GFLOPs/eval"],
    )
    for name, gflops in rows.items():
        table.add(name, f"{gflops:.2f}")
    table.show()

    # Shape assertions: monotone growth trend and >10x 2012->2015 span.
    assert rows["VGG-E"] / rows["AlexNet"] > 10
    assert rows["VGG-E"] > rows["VGG-D"] > rows["VGG-A"]
    assert rows["AlexNet"] < 3.0  # ~1.5 GFLOPs
    assert 30 < rows["VGG-E"] < 50  # ~39 GFLOPs
