"""Figure 15: the DNN benchmark table.

Regenerates the table of layers / neurons / weights / connections for
all 11 benchmark networks and compares against the published values.
"""

import pytest

from repro.bench import Table
from repro.dnn import zoo
from repro.dnn.layers import LayerKind

#: GoogLeNet's paper row counts inception modules as single layers and
#: uses a connection/neuron convention we cannot fully recover; its
#: tolerances are documented in DESIGN.md / EXPERIMENTS.md.
LOOSE = {"GoogLeNet"}


def compute_table():
    rows = {}
    for name, net in zoo.all_benchmarks().items():
        counts = net.layer_counts()
        rows[name] = {
            "conv": counts.get(LayerKind.CONV, 0),
            "fc": counts.get(LayerKind.FC, 0),
            "samp": counts.get(LayerKind.SAMP, 0),
            "neurons_m": net.neuron_count / 1e6,
            "weights_m": net.weight_count / 1e6,
            "connections_b": net.connection_count / 1e9,
        }
    return rows


def test_fig15_benchmark_table(benchmark):
    rows = benchmark.pedantic(compute_table, rounds=1, iterations=1)

    table = Table(
        "Figure 15 - DNN benchmarks (ours vs paper)",
        ["network", "CONV/FC/SAMP", "neurons M (paper)",
         "weights M (paper)", "conn B (paper)"],
    )
    for name, row in rows.items():
        paper = zoo.PAPER_FIG15[name]
        table.add(
            name,
            f"{row['conv']}/{row['fc']}/{row['samp']}",
            f"{row['neurons_m']:.2f} ({paper.neurons_m:.2f})",
            f"{row['weights_m']:.1f} ({paper.weights_m:.1f})",
            f"{row['connections_b']:.2f} ({paper.connections_b:.2f})",
        )
    table.show()

    for name, row in rows.items():
        paper = zoo.PAPER_FIG15[name]
        tol = 0.40 if name in LOOSE else 0.20
        assert row["neurons_m"] == pytest.approx(
            paper.neurons_m, rel=0.25 if name in LOOSE else 0.20
        ), name
        assert row["weights_m"] == pytest.approx(
            paper.weights_m, rel=0.05
        ), name
        assert row["connections_b"] == pytest.approx(
            paper.connections_b, rel=tol
        ), name
