"""Ablations of ScaleDeep's key design choices (DESIGN.md Sec 5).

Each ablation disables one mechanism the paper argues for and measures
the cost on the simulator:

* heterogeneous tiles vs a DaDianNao-style homogeneous design (Sec 7);
* the wheel's FC weight-reuse batching (Sec 3.3.1);
* model parallelism for FC layers across the ring (Sec 3.3.2);
* CompHeavy array reconfigurability (Sec 3.1.1).
"""

import statistics
from dataclasses import replace

import pytest

from repro.arch import single_precision_node
from repro.baselines.dadiannao import DaDianNaoModel
from repro.bench import Table, cached_simulation
from repro.dnn import zoo
from repro.dnn.analysis import training_flops
from repro.sim import simulate


class TestHeterogeneity:
    """ScaleDeep vs an iso-power homogeneous (DaDianNao-style) node."""

    def test_abl_heterogeneity(self, benchmark):
        node = single_precision_node()
        homogeneous = DaDianNaoModel.iso_power(node.peak_flops)
        names = ("AlexNet", "GoogLeNet", "VGG-A", "OF-Acc")

        def compute():
            rows = {}
            for name in names:
                net = zoo.load(name)
                hetero = cached_simulation(name).training_images_per_s
                homo = homogeneous.images_per_second(net)
                rows[name] = (hetero, homo, hetero / homo)
            return rows

        rows = benchmark(compute)
        table = Table(
            "Ablation - heterogeneous tiles vs homogeneous iso-power node",
            ["network", "ScaleDeep img/s", "homogeneous img/s", "ratio"],
        )
        for name, (het, hom, ratio) in rows.items():
            table.add(name, f"{het:,.0f}", f"{hom:,.0f}", f"{ratio:.1f}x")
        table.show()

        geo = statistics.geometric_mean(r[2] for r in rows.values())
        # Paper Sec 7: ~5x the FLOPs at iso-power.
        assert 2.5 < geo < 9.0


class TestWheelBatching:
    """FC weight streaming amortised by the wheel batch vs not."""

    def test_abl_wheel_batching(self, benchmark):
        base = single_precision_node()
        # No temporal aggregation AND no cross-cluster sharing: the hub
        # batch collapses to the locally-arriving spoke inputs.
        unbatched = replace(
            base, fc_temporal_batch=1, fc_model_parallel=False,
        )
        names = ("AlexNet", "OF-Fast", "VGG-A")

        def fc_ext_bytes(result):
            return sum(
                s.cost.traffic.ext_mem_bytes
                for s in result.stages
                if s.chip == "FcLayer"
            )

        def compute():
            rows = {}
            for name in names:
                net = zoo.load(name)
                batched = simulate(net, base)
                plain = simulate(net, unbatched)
                rows[name] = (
                    batched.mapping.fc_batch_size,
                    plain.mapping.fc_batch_size,
                    fc_ext_bytes(batched),
                    fc_ext_bytes(plain),
                    batched.training_images_per_s
                    / plain.training_images_per_s,
                )
            return rows

        rows = benchmark.pedantic(compute, rounds=1, iterations=1)
        table = Table(
            "Ablation - FcLayer hub weight-reuse batching",
            ["network", "batch", "batch (off)", "FC ext B/img",
             "FC ext B/img (off)", "throughput gain"],
        )
        for name, (b, u, eb, eu, gain) in rows.items():
            table.add(
                name, b, u, f"{eb / 1e6:.1f}M", f"{eu / 1e6:.1f}M",
                f"{gain:.2f}x",
            )
        table.show()

        for name, (b, u, eb, eu, gain) in rows.items():
            # The batch shrinks without aggregation, and the per-image
            # FC weight traffic grows roughly in proportion (Sec 3.3.1:
            # bandwidth reduction proportional to the batch size).
            assert b > u, name
            assert eu > 3.0 * eb, name
            # Throughput never improves by removing batching.
            assert gain >= 0.999, name


class TestModelParallelism:
    """FC weights sharded across clusters vs replicated per cluster."""

    def test_abl_model_parallelism(self, benchmark):
        base = single_precision_node()
        replicated = replace(base, fc_model_parallel=False)
        names = ("AlexNet", "VGG-A", "OF-Fast")

        def compute():
            rows = {}
            for name in names:
                net = zoo.load(name)
                mp = simulate(net, base)
                rep = simulate(net, replicated)
                rows[name] = (
                    mp.training_images_per_s,
                    rep.training_images_per_s,
                    mp.link_utilization.fc_ext,
                    rep.link_utilization.fc_ext,
                )
            return rows

        rows = benchmark.pedantic(compute, rounds=1, iterations=1)
        table = Table(
            "Ablation - FC model parallelism across the ring",
            ["network", "MP img/s", "replicated img/s",
             "MP fc-ext util", "repl fc-ext util"],
        )
        for name, (mp, rep, mpu, repu) in rows.items():
            table.add(
                name, f"{mp:,.0f}", f"{rep:,.0f}", f"{mpu:.2f}",
                f"{repu:.2f}",
            )
        table.show()

        for name, (mp, rep, mpu, repu) in rows.items():
            # Sharding quarters each hub's weight stream: model
            # parallelism never loses throughput and never needs more
            # external FC bandwidth.
            assert mp >= rep * 0.999, name
            assert mpu <= repu + 1e-9, name


class TestArrayReconfigurability:
    """Column/lane redistribution + row split on vs off (Sec 3.1.1)."""

    def test_abl_reconfig(self, benchmark):
        base = single_precision_node()
        rigid_tile = replace(
            base.cluster.conv_chip.comp_tile,
            row_split=False,
            lane_redistribution=False,
        )
        rigid_chip = replace(base.cluster.conv_chip, comp_tile=rigid_tile)
        rigid = replace(
            base, cluster=replace(base.cluster, conv_chip=rigid_chip),
            name="scaledeep-rigid",
        )
        names = ("AlexNet", "ZF", "GoogLeNet")

        def compute():
            rows = {}
            for name in names:
                net = zoo.load(name)
                flex = simulate(net, base)
                stiff = simulate(net, rigid)
                rows[name] = (
                    flex.training_images_per_s,
                    stiff.training_images_per_s,
                    flex.pe_utilization,
                    stiff.pe_utilization,
                )
            return rows

        rows = benchmark.pedantic(compute, rounds=1, iterations=1)
        table = Table(
            "Ablation - CompHeavy array reconfigurability",
            ["network", "reconfig img/s", "rigid img/s",
             "reconfig util", "rigid util"],
        )
        for name, (f, s, fu, su) in rows.items():
            table.add(
                name, f"{f:,.0f}", f"{s:,.0f}", f"{fu:.2f}", f"{su:.2f}"
            )
        table.show()

        gains = [f / s for f, s, _, _ in rows.values()]
        # Reconfigurability never hurts and helps at least one network
        # (the paper's C2/S2 row-split example).
        assert all(g >= 0.999 for g in gains)
        assert max(gains) > 1.01
