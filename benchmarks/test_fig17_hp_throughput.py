"""Figure 17: half-precision training & evaluation performance.

Regenerates the FP16 series and the headline scaling claim: the HP
design (larger grids, halved memories/links, ~1.35 PFLOP/s peak) trains
~1.85x and evaluates ~1.82x faster than the SP design at roughly the
same power.
"""

import statistics

from repro.arch import half_precision_node, single_precision_node
from repro.bench import Table, fmt_rate, suite_results
from repro.dnn import zoo


def aggregate(hp, sp):
    rows = {}
    for name in zoo.BENCHMARKS:
        h, s = hp[name], sp[name]
        rows[name] = (
            h.training_images_per_s,
            h.evaluation_images_per_s,
            h.pe_utilization,
            h.training_images_per_s / s.training_images_per_s,
            h.evaluation_images_per_s / s.evaluation_images_per_s,
        )
    return rows


def test_fig17_hp_throughput(benchmark, hp_results, sp_results):
    rows = benchmark(aggregate, hp_results, sp_results)

    table = Table(
        "Figure 17 - Half precision: training & evaluation performance",
        ["network", "train img/s", "eval img/s", "PE util",
         "train HP/SP", "eval HP/SP"],
    )
    for name, (train, evaln, util, st, se) in rows.items():
        table.add(
            name, fmt_rate(train), fmt_rate(evaln), f"{util:.2f}",
            f"{st:.2f}x", f"{se:.2f}x",
        )
    train_geo = statistics.geometric_mean(r[3] for r in rows.values())
    eval_geo = statistics.geometric_mean(r[4] for r in rows.values())
    table.add("GeoMean", "", "", "", f"{train_geo:.2f}x", f"{eval_geo:.2f}x")
    table.show()

    # Paper: 1.85x training / 1.82x evaluation speedup over SP.  The HP
    # re-mapping quantises differently per network, so the geomean is
    # the reproduction target.
    assert 1.4 < train_geo < 2.6
    assert 1.3 < eval_geo < 2.6
    # Peak scaling sanity: the HP node's peak is ~2x the SP node's.
    assert half_precision_node().peak_flops > (
        1.8 * single_precision_node().peak_flops
    )
    for name, (train, _, _, _, _) in rows.items():
        assert train > 512, name
