"""Figure 20: average power and processing efficiency during training.

Regenerates both series: normalised average power (with its compute /
memory / interconnect split) and achieved GFLOPs/W per network.  Paper
anchors: normalised power well below peak with a near-constant memory
component, and an average efficiency of ~331.7 GFLOPs/W.
"""

import statistics

from repro.bench import Table
from repro.dnn import zoo

PAPER_MEAN_EFFICIENCY = 331.7  # GFLOPs/W
NODE_PEAK_W = 1400.0


def aggregate(results):
    return {
        name: (
            r.average_power.logic_w,
            r.average_power.memory_w,
            r.average_power.interconnect_w,
            r.average_power.total_w,
            r.gflops_per_watt,
        )
        for name, r in results.items()
    }


def test_fig20_power_efficiency(benchmark, sp_results):
    rows = benchmark(aggregate, sp_results)

    table = Table(
        "Figure 20 - Average power and processing efficiency (training)",
        ["network", "compute W", "memory W", "interconnect W",
         "norm. power", "GFLOPs/W"],
    )
    for name, (logic, mem, inter, total, eff) in rows.items():
        table.add(
            name, f"{logic:.0f}", f"{mem:.0f}", f"{inter:.0f}",
            f"{total / NODE_PEAK_W:.2f}", f"{eff:.0f}",
        )
    mean_eff = statistics.mean(r[4] for r in rows.values())
    table.add("Mean", "", "", "", "", f"{mean_eff:.0f}")
    table.show()

    for name, (logic, mem, inter, total, eff) in rows.items():
        # Average power is a fraction of peak, never exceeding it.
        assert 0.25 < total / NODE_PEAK_W < 0.85, name
        assert eff > 100, name
    # Memory power is near-constant across workloads (leakage-dominated).
    mems = [r[1] for r in rows.values()]
    assert max(mems) / min(mems) < 1.2
    # Compute power tracks utilization: it varies across workloads.
    logics = [r[0] for r in rows.values()]
    assert max(logics) / min(logics) > 1.2
    # Mean efficiency lands near the paper's 331.7 GFLOPs/W.
    assert 0.6 * PAPER_MEAN_EFFICIENCY < mean_eff < 1.6 * PAPER_MEAN_EFFICIENCY
