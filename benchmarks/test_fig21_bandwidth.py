"""Figure 21: bandwidth utilization of ScaleDeep's links during training.

Regenerates the three panels: on-chip links (Comp-Mem, Mem-Mem), chip
cluster links (Conv-Mem, Fc-Mem external memory; wheel arcs and spokes),
and the node-level ring, for all 11 benchmarks.

Paper anchors: the Comp-Mem links are the best utilized on-chip links;
Mem-Mem links run lower; arc traffic is minimal for networks fitting a
single chip; ring utilization is small for every benchmark except the
VGG-D/E networks that span multiple chip clusters.
"""

import statistics

from repro.bench import Table
from repro.dnn import zoo


def aggregate(results):
    return {
        name: r.link_utilization.as_dict() for name, r in results.items()
    }


def test_fig21_bandwidth(benchmark, sp_results):
    rows = benchmark(aggregate, sp_results)

    columns = ["network", "comp-mem", "mem-mem", "conv-ext", "fc-ext",
               "spoke", "arc", "ring"]
    table = Table("Figure 21 - Link bandwidth utilization (training)",
                  columns)
    for name, util in rows.items():
        table.add(
            name,
            *(f"{util[k]:.2f}" for k in
              ("comp_mem", "mem_mem", "conv_ext", "fc_ext", "spoke",
               "arc", "ring")),
        )
    geo = {
        key: statistics.geometric_mean(
            max(rows[n][key], 1e-3) for n in rows
        )
        for key in rows["AlexNet"]
    }
    table.add("GeoMean", *(f"{geo[k]:.2f}" for k in
                           ("comp_mem", "mem_mem", "conv_ext", "fc_ext",
                            "spoke", "arc", "ring")))
    table.show()

    multi_cluster = {
        name for name, r in sp_results.items()
        if r.mapping.clusters_per_copy > 1
    }
    single_chip = {
        name for name, r in sp_results.items()
        if r.mapping.conv_chips_per_copy == 1
    }

    for name, util in rows.items():
        for key, value in util.items():
            assert 0.0 <= value <= 1.0, (name, key)
        # On-chip: Comp-Mem links busier than Mem-Mem (paper: 0.87 best).
        assert util["comp_mem"] >= util["mem_mem"], name
        # Wheel arcs idle when the whole network fits one chip.
        if name in single_chip:
            assert util["arc"] < 0.1, name
        # Ring small unless the copy spans clusters.
        if name not in multi_cluster:
            assert util["ring"] < 0.5, name

    # VGG-D/E span clusters and push CONV traffic onto the ring.
    assert multi_cluster >= {"VGG-D", "VGG-E"}
    assert rows["VGG-D"]["ring"] == max(r["ring"] for r in rows.values())
