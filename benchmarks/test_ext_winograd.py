"""Extension study: Winograd convolutions on ScaleDeep (Sec 6.1).

"We note that SCALEDEEP implementations currently do not use Winograd,
and we do not find any fundamental bottlenecks in doing so to further
improve its performance."  This bench projects that improvement with
the F(2x2, 3x3) arithmetic reduction applied to eligible convolutions,
and re-runs the Fig 18 comparison against the Winograd GPU stacks on a
level algorithmic playing field.
"""

import statistics
from dataclasses import replace

from repro.arch import single_precision_node
from repro.baselines.gpu import GpuFramework, gpu_images_per_second
from repro.bench import Table
from repro.dnn import zoo
from repro.sim import simulate

NETWORKS = ("AlexNet", "GoogLeNet", "ResNet18", "VGG-A", "VGG-E")


def compute_projection():
    base = single_precision_node()
    wino = replace(base, use_winograd=True, name="scaledeep-winograd")
    rows = {}
    for name in NETWORKS:
        net = zoo.load(name)
        plain = simulate(net, base).training_images_per_s
        fast = simulate(net, wino).training_images_per_s
        rows[name] = (plain, fast, fast / plain)
    return rows


def test_ext_winograd_projection(benchmark):
    rows = benchmark.pedantic(compute_projection, rounds=1, iterations=1)

    table = Table(
        "Projected ScaleDeep speedup with Winograd convolutions",
        ["network", "baseline img/s", "winograd img/s", "speedup"],
    )
    for name, (plain, fast, speedup) in rows.items():
        table.add(name, f"{plain:,.0f}", f"{fast:,.0f}",
                  f"{speedup:.2f}x")
    table.show()

    # 3x3-dominated networks gain the most; Winograd never hurts.
    assert rows["VGG-A"][2] > 1.5
    assert rows["VGG-E"][2] > 1.5
    assert rows["VGG-A"][2] > rows["GoogLeNet"][2] >= rows["AlexNet"][2]
    for name, (_, _, speedup) in rows.items():
        assert speedup >= 0.999, name


def test_ext_winograd_levels_the_gpu_comparison(benchmark):
    """With Winograd on both sides, ScaleDeep's lead over the Winograd
    GPU stacks returns to roughly its non-Winograd magnitude."""
    base = single_precision_node()
    wino = replace(base, use_winograd=True, name="scaledeep-winograd")

    def compute():
        speedups = {}
        for name in ("GoogLeNet", "VGG-A"):
            net = zoo.load(name)
            cluster = (
                simulate(net, wino).training_images_per_s
                / wino.cluster_count
            )
            gpu = gpu_images_per_second(
                net, GpuFramework.NERVANA_WINOGRAD
            )
            speedups[name] = cluster / gpu
        return speedups

    speedups = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = Table(
        "ScaleDeep+Winograd cluster vs TitanX Nervana-Winograd",
        ["network", "speedup"],
    )
    for name, s in speedups.items():
        table.add(name, f"{s:.1f}x")
    table.show()

    geo = statistics.geometric_mean(speedups.values())
    # Both sides use the same algorithm: the architectural advantage
    # (6-15x in the paper's plain comparison) reasserts itself.
    assert 5 < geo < 25
