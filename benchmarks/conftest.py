"""Shared fixtures for the figure benchmarks.

The expensive substrate (mapping + simulation of all 11 networks) is
memoised in :mod:`repro.bench.runner`; fixtures warm the cache so each
figure's pytest-benchmark times its own aggregation, and the printed
tables reproduce the paper's rows/series.
"""

import pytest

from repro.bench import clear_caches, suite_results


@pytest.fixture(scope="session", autouse=True)
def _cold_caches_between_suite_runs():
    """Drop the memoised substrate when the session ends, so repeated
    suite runs in one process time cold caches, not the last run's
    warm results."""
    yield
    clear_caches()


@pytest.fixture(scope="session")
def sp_results():
    """Single-precision simulation of the full suite (Fig 16 substrate)."""
    return suite_results("sp")


@pytest.fixture(scope="session")
def hp_results():
    """Half-precision simulation of the full suite (Fig 17 substrate)."""
    return suite_results("hp")
