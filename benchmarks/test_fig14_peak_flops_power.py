"""Figure 14: micro-architectural parameters, peak FLOPs and efficiency.

Regenerates the right-hand tables of Fig 14: peak FLOP/s and processing
efficiency (FLOPs/W) for every component of the single-precision design,
checked against the published values, plus the 7032-tile inventory.
"""

import pytest

from repro.arch import (
    FREQUENCY_HZ,
    PAPER_EFFICIENCY,
    PAPER_PEAK_FLOPS,
    PAPER_POWER_TABLE,
    PAPER_TILE_COUNTS,
    single_precision_node,
)
from repro.bench import Table, fmt_count


def compute_components():
    node = single_precision_node()
    cluster = node.cluster
    conv, fc = cluster.conv_chip, cluster.fc_chip
    return {
        "node": node.peak_flops,
        "cluster": cluster.peak_flops(FREQUENCY_HZ),
        "conv_chip": conv.peak_flops(FREQUENCY_HZ),
        "conv_comp_tile": conv.comp_tile.peak_flops(FREQUENCY_HZ),
        "conv_mem_tile": conv.mem_tile.peak_flops(FREQUENCY_HZ),
        "fc_chip": fc.peak_flops(FREQUENCY_HZ),
        "fc_comp_tile": fc.comp_tile.peak_flops(FREQUENCY_HZ),
        "fc_mem_tile": fc.mem_tile.peak_flops(FREQUENCY_HZ),
    }


def test_fig14_peak_flops_power(benchmark):
    peaks = benchmark(compute_components)

    table = Table(
        "Figure 14 - Peak FLOPs, power, processing efficiency",
        ["component", "peak FLOP/s", "paper", "power W",
         "GFLOPs/W", "paper"],
    )
    for key, peak in peaks.items():
        power = PAPER_POWER_TABLE[key].peak_w
        table.add(
            key,
            fmt_count(peak),
            fmt_count(PAPER_PEAK_FLOPS[key]),
            f"{power:g}",
            f"{peak / power / 1e9:.1f}",
            f"{PAPER_EFFICIENCY[key] / 1e9:.1f}",
        )
    table.show()

    for key, peak in peaks.items():
        assert peak == pytest.approx(PAPER_PEAK_FLOPS[key], rel=0.02), key
        eff = peak / PAPER_POWER_TABLE[key].peak_w
        assert eff == pytest.approx(PAPER_EFFICIENCY[key], rel=0.03), key

    node = single_precision_node()
    assert node.tile_count == PAPER_TILE_COUNTS["node_total"]
    assert node.peak_flops == pytest.approx(680e12, rel=0.01)
