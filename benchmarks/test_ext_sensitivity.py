"""Extension study: sensitivity of the headline metrics to the model's
calibrated constants.

Two constants are calibration choices rather than published facts: the
instruction-overhead factor (the paper's fourth utilization-loss term)
and the memory-leakage fraction of the power model.  A credible
reproduction shows how far the headline numbers move when these sweep —
if a conclusion flipped inside the plausible range, it would not be a
reproduction of the paper's *shape* at all.
"""

from repro.arch import single_precision_node
from repro.arch.power import node_power_model
from repro.bench import Table, cached_mapping
from repro.compiler.cost import step_cost
from repro.dnn import zoo
from repro.dnn.analysis import Step
from repro.sim import simulate

OVERHEADS = (0.70, 0.83, 0.95)
LEAKAGES = (0.6, 0.85, 1.0)


def sweep_overhead():
    """Bottleneck-stage cycles of AlexNet's conv2 FP vs the overhead
    factor (throughput scales inversely with the bottleneck)."""
    node = single_precision_node()
    mapping = cached_mapping("AlexNet")
    alloc = mapping.conv_allocations["conv2"]
    rows = {}
    for overhead in OVERHEADS:
        cost = step_cost(
            node.frequency_hz, node.cluster.conv_chip,
            mapping.network["conv2"], Step.FP, alloc.columns,
            node.dtype_bytes, alloc.weights_on_chip,
            instruction_overhead=overhead,
        )
        rows[overhead] = cost.cycles
    return rows


def sweep_leakage():
    """Average node power of AlexNet training vs the leakage fraction."""
    result = simulate(zoo.alexnet(), single_precision_node())
    rows = {}
    for leakage in LEAKAGES:
        model = node_power_model(memory_leakage_fraction=leakage)
        draw = model.average(0.35, 0.3, 0.5)
        rows[leakage] = draw.total_w
    return rows, result


def test_ext_overhead_sensitivity(benchmark):
    rows = benchmark.pedantic(sweep_overhead, rounds=1, iterations=1)
    table = Table(
        "Sensitivity: AlexNet conv2/fp cycles vs instruction overhead",
        ["overhead factor", "stage cycles", "vs calibrated"],
    )
    calibrated = rows[0.83]
    for overhead, cycles in rows.items():
        table.add(
            f"{overhead:.2f}", f"{cycles:,.0f}",
            f"{cycles / calibrated:.2f}x",
        )
    table.show()
    # Throughput moves inversely and proportionally: a +-15% overhead
    # change moves the bottleneck by <20% — no conclusion flips.
    assert rows[0.70] / calibrated < 1.25
    assert rows[0.95] / calibrated > 0.80
    assert rows[0.70] > rows[0.83] > rows[0.95]


def test_ext_leakage_sensitivity(benchmark):
    rows, result = benchmark.pedantic(sweep_leakage, rounds=1, iterations=1)
    table = Table(
        "Sensitivity: average node power vs memory leakage fraction",
        ["leakage fraction", "avg power W", "norm."],
    )
    for leakage, power in rows.items():
        table.add(f"{leakage:.2f}", f"{power:.0f}", f"{power / 1400:.2f}")
    table.show()
    # Memory is 10% of node power: sweeping its leakage moves the total
    # by a few percent only — efficiency conclusions are insensitive.
    spread = max(rows.values()) - min(rows.values())
    assert spread / min(rows.values()) < 0.10
    # And the simulated power sits inside the swept band's neighborhood.
    assert 0.25 < result.average_power.total_w / 1400 < 0.85
