"""Extension study: grid-wheel-ring vs a conventional fat tree (Sec 7).

"DaDianNao adopts a conventional fat tree interconnect topology, which
does not leverage the data-flow in DNNs, and incurs additional power
and protocol overheads."  This bench quantifies the structural side of
that claim over the same 20 chips: hop counts for the communication
patterns DNNs actually generate (producer->consumer between adjacent
layers, CONV->FC hand-off) and the switching hardware each needs.
"""

from repro.arch import single_precision_node
from repro.arch.topology import (
    bisection_bandwidth,
    build_topology,
    compare_with_fat_tree,
)
from repro.bench import Table


def compute_profiles():
    node = single_precision_node()
    profiles = compare_with_fat_tree(node)
    bisection = bisection_bandwidth(build_topology(node))
    return profiles, bisection


def test_ext_topology_comparison(benchmark):
    profiles, bisection = benchmark.pedantic(
        compute_profiles, rounds=1, iterations=1
    )

    table = Table(
        "Interconnect comparison over 20 chips (Sec 7)",
        ["property", "grid-wheel-ring", "fat-tree"],
    )
    ours = profiles["grid-wheel-ring"]
    tree = profiles["fat-tree"]
    table.add("chips", ours.chips, tree.chips)
    table.add("links", ours.links, tree.links)
    table.add("dedicated switches", ours.switch_nodes, tree.switch_nodes)
    table.add("producer->consumer hops", f"{ours.neighbour_hops:.0f}",
              f"{tree.neighbour_hops:.0f}")
    table.add("CONV->FC hops (mean)", f"{ours.fc_hops:.1f}",
              f"{tree.fc_hops:.1f}")
    table.add("diameter", ours.diameter, tree.diameter)
    table.show()
    print(f"\ngrid-wheel-ring bisection bandwidth: "
          f"{bisection / 1e9:.1f} GB/s")

    # The structural claims: ScaleDeep's topology needs no switching
    # hardware and keeps every DNN communication pattern at 1 hop.
    assert ours.switch_nodes == 0 and tree.switch_nodes > 0
    assert ours.neighbour_hops == 1
    assert ours.fc_hops == 1.0
    assert tree.neighbour_hops > ours.neighbour_hops
    assert tree.fc_hops > ours.fc_hops
    assert bisection > 0
