"""Figure 5: kernel-level summary of DNN training across the suite.

Regenerates the table: for each computational kernel, its share of the
total training FLOPs and its Bytes/FLOP ratio, aggregated over all 11
benchmark networks — the classification that motivates the CompHeavy /
MemHeavy tile split.
"""

import pytest

from repro.bench import Table
from repro.dnn import zoo
from repro.dnn.analysis import (
    COMPUTE_DOMINANT_KERNELS,
    Kernel,
    kernel_summary,
)

#: Paper Fig 5 reference values: (FLOPs fraction, Bytes/FLOP).
PAPER_FIG5 = {
    Kernel.ND_CONV: (0.931, 0.14),
    Kernel.MATMUL: (0.0302, 2.0),
    Kernel.ND_ACCUM: (0.0302, 4.01),
    Kernel.VEC_ELT_MUL: (0.0075, 4.0),
    Kernel.SAMPLING: (0.001, 5.0),
    Kernel.ACT_FN: (0.001, 8.0),
}


def compute_summary():
    return kernel_summary(list(zoo.all_benchmarks().values()))


def test_fig05_kernel_summary(benchmark):
    summary = benchmark.pedantic(compute_summary, rounds=1, iterations=1)

    table = Table(
        "Figure 5 - Operations in DNN training (suite-wide)",
        ["kernel", "FLOPs %", "paper %", "B/F", "paper B/F", "tile"],
    )
    for kernel in Kernel:
        frac, bf = summary[kernel]
        pf, pbf = PAPER_FIG5[kernel]
        tile = (
            "CompHeavy" if kernel in COMPUTE_DOMINANT_KERNELS else "MemHeavy"
        )
        table.add(
            kernel.value, f"{100 * frac:.2f}", f"{100 * pf:.2f}",
            f"{bf:.3f}", f"{pbf:.2f}", tile,
        )
    table.show()

    conv_frac, conv_bf = summary[Kernel.ND_CONV]
    mm_frac, mm_bf = summary[Kernel.MATMUL]
    samp_frac, samp_bf = summary[Kernel.SAMPLING]
    # Shape targets: conv dominates FLOPs at very low B/F, matmul is a
    # few percent at ~2 B/F, everything else is small with high B/F.
    assert conv_frac == pytest.approx(0.93, abs=0.06)
    assert conv_bf < 0.5
    assert mm_frac == pytest.approx(0.03, abs=0.025)
    assert mm_bf == pytest.approx(2.0, rel=0.3)
    assert samp_bf == pytest.approx(5.0, rel=0.1)
    # The compute-dominant kernels jointly carry >90% of FLOPs.
    dominant = sum(summary[k][0] for k in COMPUTE_DOMINANT_KERNELS)
    assert dominant > 0.90
