"""Extension study: minibatch gradient synchronization (Sec 3.3).

Not a numbered figure, but the quantitative story behind two of the
paper's design decisions: the wheel arcs / ring carry the minibatch
gradient accumulation, and FC model parallelism keeps the (dominant)
FC weights off the ring entirely.  This bench sweeps the minibatch
size and compares sharded vs replicated FC weights.
"""

from dataclasses import replace

from repro.arch import single_precision_node
from repro.bench import Table, cached_mapping
from repro.compiler import map_network
from repro.dnn import zoo
from repro.sim.allreduce import minibatch_sync

MINIBATCHES = (32, 64, 128, 256, 512, 1024, 2048)


def compute_sweep():
    rows = {}
    for name in ("AlexNet", "VGG-A", "GoogLeNet"):
        mapping = cached_mapping(name)
        rows[name] = {
            mb: minibatch_sync(mapping, mb).overhead_fraction
            for mb in MINIBATCHES
        }
    return rows


def test_ext_sync_vs_minibatch(benchmark):
    rows = benchmark(compute_sweep)

    table = Table(
        "Gradient-sync overhead vs minibatch size (fraction of compute)",
        ["network"] + [str(mb) for mb in MINIBATCHES],
    )
    for name, series in rows.items():
        table.add(name, *(f"{series[mb]:.3f}" for mb in MINIBATCHES))
    table.show()

    for name, series in rows.items():
        values = [series[mb] for mb in MINIBATCHES]
        # Strictly decreasing: sync amortises with the minibatch.
        assert all(a > b for a, b in zip(values, values[1:])), name
        # By minibatch 2048 the overhead is noise.
        assert values[-1] < 0.15, name


def test_ext_model_parallelism_ring_payload(benchmark):
    node = single_precision_node()
    replicated_node = replace(node, fc_model_parallel=False)

    def compute():
        rows = {}
        for name in ("AlexNet", "OF-Fast", "VGG-A"):
            net = zoo.load(name)
            sharded = minibatch_sync(map_network(net, node), 256)
            replicated = minibatch_sync(
                map_network(net, replicated_node), 256
            )
            rows[name] = (
                sharded.ring_cycles,
                replicated.ring_cycles,
                net.weight_count,
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = Table(
        "Ring all-reduce cycles per minibatch: FC sharded vs replicated",
        ["network", "sharded", "replicated", "inflation"],
    )
    for name, (shard, repl, _) in rows.items():
        table.add(
            name, f"{shard:,.0f}", f"{repl:,.0f}",
            f"{repl / shard:.1f}x",
        )
    table.show()

    # FC weights dominate these networks (Fig 4): replicating them
    # inflates the ring phase by the conv:total weight ratio.
    for name, (shard, repl, _) in rows.items():
        assert repl > 3 * shard, name
