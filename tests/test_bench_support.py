"""Tests for the benchmark-support package (tables, runners)."""

import pytest

from repro.bench import (
    Table,
    cached_mapping,
    cached_simulation,
    fmt_count,
    fmt_rate,
    suite_results,
)
from repro.dnn import zoo
from repro.errors import ConfigError


class TestFormatting:
    def test_fmt_rate(self):
        assert fmt_rate(42828.4) == "42,828"

    @pytest.mark.parametrize(
        "value,expected",
        [
            (680e12, "680.00T"),
            (19.2e9, "19.20G"),
            (60.9e6, "60.90M"),
            (1516, "1.52K"),
            (12.0, "12.00"),
        ],
    )
    def test_fmt_count(self, value, expected):
        assert fmt_count(value) == expected

    def test_fmt_count_units(self):
        assert fmt_count(512 * 1024, "B") == "524.29KB"


class TestTable:
    def test_render_aligns_columns(self):
        table = Table("Title", ["a", "bb"])
        table.add("x", 1)
        table.add("longer", 22)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len({len(line) for line in lines[3:]}) == 1

    def test_wrong_arity_rejected(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ConfigError):
            table.add("only-one")

    def test_empty_table_renders(self):
        text = Table("empty", ["col"]).render()
        assert "empty" in text

    def test_show_prints(self, capsys):
        table = Table("shown", ["c"])
        table.add("v")
        table.show()
        assert "shown" in capsys.readouterr().out


class TestRunnerCache:
    def test_mapping_memoised(self):
        a = cached_mapping("AlexNet")
        b = cached_mapping("AlexNet")
        assert a is b

    def test_simulation_memoised(self):
        a = cached_simulation("AlexNet")
        assert a is cached_simulation("AlexNet")

    def test_precisions_distinct(self):
        sp = cached_mapping("AlexNet", "sp")
        hp = cached_mapping("AlexNet", "hp")
        assert sp is not hp
        assert sp.node.dtype_bytes == 4
        assert hp.node.dtype_bytes == 2

    def test_unknown_precision(self):
        with pytest.raises(ConfigError):
            cached_mapping("AlexNet", "fp8")

    def test_suite_results_cover_benchmarks(self):
        results = suite_results("sp")
        assert list(results) == list(zoo.BENCHMARKS)
