"""Tests for the GPU and DaDianNao baseline models."""

import pytest

from repro.arch import single_precision_node
from repro.baselines.dadiannao import (
    DaDianNaoModel,
    HOMOGENEOUS_PEAK_RATIO,
)
from repro.baselines.gpu import (
    FRAMEWORK_MODELS,
    GpuFramework,
    all_framework_rates,
    gpu_images_per_second,
)
from repro.dnn import zoo
from repro.sim import simulate


@pytest.fixture(scope="module")
def alexnet():
    return zoo.alexnet()


class TestGpuModel:
    def test_framework_ordering(self, alexnet):
        """cuDNN-R2 is the slowest stack; Nervana the fastest non-
        Winograd one (Fig 18's relative order)."""
        rates = all_framework_rates(alexnet)
        assert rates[GpuFramework.CUDNN_R2] < rates[GpuFramework.TENSORFLOW]
        assert rates[GpuFramework.TENSORFLOW] <= rates[GpuFramework.NERVANA]

    def test_winograd_helps_3x3_heavy_networks_most(self):
        """VGG (all-3x3) gains more from Winograd than AlexNet."""
        def gain(net):
            return gpu_images_per_second(
                net, GpuFramework.NERVANA_WINOGRAD
            ) / gpu_images_per_second(net, GpuFramework.NERVANA)

        assert gain(zoo.vgg_a()) > gain(zoo.alexnet()) > 1.0

    def test_evaluation_faster_than_training(self, alexnet):
        train = gpu_images_per_second(alexnet, GpuFramework.CUDNN_R2, True)
        evaln = gpu_images_per_second(alexnet, GpuFramework.CUDNN_R2, False)
        assert 2.0 < evaln / train < 4.0

    def test_alexnet_cudnn_r2_historic_ballpark(self, alexnet):
        """TitanX + cuDNN R2 trained AlexNet at a few hundred img/s."""
        rate = gpu_images_per_second(alexnet, GpuFramework.CUDNN_R2)
        assert 150 < rate < 900

    def test_small_batch_pays_weight_traffic(self, alexnet):
        big = gpu_images_per_second(alexnet, GpuFramework.NERVANA, batch=128)
        small = gpu_images_per_second(alexnet, GpuFramework.NERVANA, batch=1)
        assert small < big

    def test_fig18_speedup_bands(self):
        """The headline comparison: a ScaleDeep chip cluster vs TitanX.
        Geomean speedups land in the paper's bands (Sec 6.1)."""
        node = single_precision_node()
        names = ("AlexNet", "GoogLeNet", "OF-Acc", "VGG-A")
        speedups = {fw: 1.0 for fw in GpuFramework}
        for name in names:
            net = zoo.load(name)
            cluster_rate = (
                simulate(net, node).training_images_per_s
                / node.cluster_count
            )
            for fw, gpu_rate in all_framework_rates(net).items():
                speedups[fw] *= cluster_rate / gpu_rate
        geomeans = {
            fw: s ** (1 / len(names)) for fw, s in speedups.items()
        }
        assert 18 < geomeans[GpuFramework.CUDNN_R2] < 32
        assert 5 < geomeans[GpuFramework.NERVANA] < 16
        assert 6 < geomeans[GpuFramework.TENSORFLOW] < 17
        assert 4 < geomeans[GpuFramework.CUDNN_WINOGRAD] < 14
        assert 4 < geomeans[GpuFramework.NERVANA_WINOGRAD] < 12


class TestDaDianNao:
    def test_iso_power_peak_ratio(self):
        model = DaDianNaoModel.iso_power(680e12)
        assert model.peak_flops == pytest.approx(
            680e12 * HOMOGENEOUS_PEAK_RATIO
        )

    def test_scaledeep_sustains_about_5x_flops(self, alexnet):
        """Sec 7: 'SCALEDEEP delivers 5x as many FLOPs as DaDianNao at
        iso-power'."""
        node = single_precision_node()
        result = simulate(alexnet, node)
        homogeneous = DaDianNaoModel.iso_power(node.peak_flops)
        ratio = (
            result.achieved_tflops * 1e12
            / homogeneous.sustained_flops(alexnet)
        )
        assert 2.5 < ratio < 8.0

    def test_fc_heavy_layers_bandwidth_bound(self, alexnet):
        from repro.dnn.analysis import Step

        model = DaDianNaoModel.iso_power(680e12)
        fc = model.layer_seconds(alexnet, "fc6", Step.FP)
        conv = model.layer_seconds(alexnet, "conv3", Step.FP)
        # fc6 has ~1/2 the FLOPs of conv3 but takes longer: B/F mismatch.
        assert fc > conv

    def test_throughput_positive(self, alexnet):
        model = DaDianNaoModel.iso_power(680e12)
        assert model.images_per_second(alexnet) > 0
        assert model.images_per_second(alexnet, training=False) > (
            model.images_per_second(alexnet, training=True)
        )
