"""Tests for the compiler pass pipeline over the unified IR."""

from collections import Counter
from dataclasses import replace

import pytest

from repro.arch import single_precision_node
from repro.compiler import fingerprint
from repro.compiler.codegen import ForwardCompiler, compile_forward
from repro.compiler.codegen_training import compile_training
from repro.compiler.fingerprint import compile_digest
from repro.compiler.ir import Phase
from repro.compiler.passes.legalize import LegalizePass
from repro.compiler.passes.manager import Pass, PassContext, PassManager
from repro.compiler.pipeline import compile_network
from repro.dnn import zoo
from repro.dnn.builder import NetworkBuilder
from repro.errors import IRVerificationError, MappingError
from repro.faults.model import FaultSpec, sample_faults
from repro.functional.reference import ReferenceModel
from repro.isa.instructions import Opcode

PIPELINE_ORDER = [
    "legalize", "place-check", "tracker-assign", "schedule", "lower",
    "fuse",
]


def _model_pair(name):
    net = zoo.load(name)
    return net, ReferenceModel(net, seed=0)


def _armed_tracker_ports(programs):
    """Per-port armed MEMTRACK counts, keyed like the IR tracker plan."""
    armed = Counter()
    for program in programs:
        for ins in program.instructions:
            if ins.opcode in (Opcode.MEMTRACK, Opcode.DMA_MEMTRACK):
                armed[str(ins.operand("port"))] += 1
    return dict(armed)


class TestPipeline:
    def test_pass_order_is_recorded(self):
        compiled = compile_forward(*_model_pair("TinyCNN"))
        assert [s.name for s in compiled.pass_stats] == PIPELINE_ORDER

    def test_lower_notes_programs_and_dialect(self):
        compiled = compile_forward(*_model_pair("TinyCNN"))
        lower = compiled.pass_stats[-2]
        assert lower.name == "lower"
        assert lower.notes["programs"] == len(compiled.programs)
        assert lower.notes["dialect"] == "exact"

    def test_fuse_notes_coverage(self):
        compiled = compile_forward(*_model_pair("TinyCNN"))
        fuse = compiled.pass_stats[-1]
        assert fuse.name == "fuse"
        assert fuse.notes["superops"] > 0
        assert 0 < fuse.notes["coverage"] <= 1.0
        assert fuse.notes["fused_instructions"] == sum(
            len(s) for p in compiled.programs for s in p.superops
        )

    def test_fuse_flag_off_skips_the_pass(self):
        net, model = _model_pair("TinyCNN")
        compiled = ForwardCompiler(net, model, fuse=False).compile()
        assert [s.name for s in compiled.pass_stats] == PIPELINE_ORDER[:-1]
        assert all(not p.superops for p in compiled.programs)

    def test_compiled_ir_travels_with_the_programs(self):
        compiled = compile_forward(*_model_pair("TinyMLP"))
        assert compiled.ir is not None
        assert compiled.ir.level == "tile"
        assert {op.phase for op in compiled.ir.ops} == {Phase.FP}

    def test_unknown_scope_is_typed(self):
        with pytest.raises(MappingError, match="unknown legalization"):
            LegalizePass("sideways")

    def test_forward_scope_rejects_grouped_conv(self):
        b = NetworkBuilder("grouped")
        b.input(4, 8)
        b.conv(8, kernel=3, pad=1, groups=2)
        b.global_pool()
        b.fc(4)
        net = b.build()
        with pytest.raises(MappingError, match="groups=1"):
            compile_forward(net, ReferenceModel(net, seed=0))


class TestSchedule:
    def test_fp_schedule_follows_network_order(self):
        compiled = compile_forward(*_model_pair("TinyCNN"))
        layers = [
            name.split(":")[1].split("@")[0]
            for name in compiled.ir.schedule
        ]
        expected = [
            node.name for node in compiled.network
            if node.name != compiled.network.input.name
        ]
        seen = list(dict.fromkeys(layers))
        assert seen == expected

    def test_training_schedule_ends_with_injection(self):
        compiled = compile_training(*_model_pair("TinyCNN"))
        schedule = compiled.forward.ir.schedule
        assert schedule[-1] == "bp:inject"
        phases = [name.split(":")[0] for name in schedule]
        # All FP ops come before the backward wave.
        assert phases.index("bp") > max(
            i for i, p in enumerate(phases) if p == "fp"
        )


class TestTrackerPlan:
    @pytest.mark.parametrize("name", ["TinyCNN", "TinyMLP"])
    def test_forward_plan_matches_armed_trackers(self, name):
        """The IR-level tracker plan is exactly what the lowering arms —
        the plan cannot drift from the emission."""
        compiled = compile_forward(*_model_pair(name))
        plan = {
            k: int(v)
            for k, v in compiled.ir.meta["tracker_plan"].items()
        }
        assert _armed_tracker_ports(compiled.programs) == plan
        assert sum(plan.values()) == sum(
            op.attrs["trackers"] for op in compiled.ir.ops
        )

    @pytest.mark.parametrize("minibatch", [1, 2])
    def test_training_plan_matches_armed_trackers(self, minibatch):
        compiled = compile_training(
            *_model_pair("TinyCNN"), minibatch=minibatch
        )
        plan = {
            k: int(v)
            for k, v in compiled.forward.ir.meta["tracker_plan"].items()
        }
        assert _armed_tracker_ports(compiled.forward.programs) == plan

    def test_capacity_overflow_is_typed(self):
        net, model = _model_pair("TinyCNN")
        compiler = ForwardCompiler(net, model)
        compiler.chip = replace(
            compiler.chip,
            mem_tile=replace(compiler.chip.mem_tile, tracker_count=1),
        )
        with pytest.raises(IRVerificationError, match="tracker"):
            compiler.compile()


class TestManagerVerification:
    def test_malformed_pass_output_fails_at_its_boundary(self):
        class Corrupt(Pass):
            name = "corrupt"

            def run(self, ir, ctx, stats):
                ir.add_edge("fp:ghost", "fp:phantom", words=1)
                return ir

        net = zoo.load("TinyMLP")
        compiled = compile_network(net, single_precision_node())
        manager = PassManager([Corrupt()])
        with pytest.raises(IRVerificationError):
            manager.run(compiled.ir, PassContext(net=net))

    def test_verification_can_be_disabled(self):
        class Corrupt(Pass):
            name = "corrupt"

            def run(self, ir, ctx, stats):
                ir.add_edge("fp:ghost", "fp:phantom", words=1)
                return ir

        net = zoo.load("TinyMLP")
        compiled = compile_network(net, single_precision_node())
        manager = PassManager([Corrupt()], verify=False)
        ir, stats = manager.run(compiled.ir, PassContext(net=net))
        assert stats[0].changed


class TestFaultRemap:
    def test_no_mask_is_a_no_op(self):
        net = zoo.load("AlexNet")
        compiled = compile_network(net, single_precision_node())
        assert "fault_remap" not in compiled.ir.meta
        assert not compiled.mapping.degraded

    def test_mask_rewrites_the_ir(self):
        net = zoo.load("AlexNet")
        node = single_precision_node()
        mask = sample_faults(FaultSpec(rate=0.05, seed=7), node)
        compiled = compile_network(net, node, faults=mask)
        assert compiled.ir.meta["fault_remap"]["fault_count"] > 0
        assert compiled.mapping.faults is mask
        healthy = compile_network(net, node)
        assert compiled.ir.to_json() != healthy.ir.to_json()

    def test_describe_includes_pass_stats(self):
        net = zoo.load("TinyMLP")
        compiled = compile_network(net, single_precision_node())
        text = compiled.describe()
        assert "fault-remap" in text


class TestFingerprintSchema:
    def test_ir_schema_version_is_in_the_digest(self, monkeypatch):
        net = zoo.load("TinyMLP")
        node = single_precision_node()
        before = compile_digest(net, node)
        monkeypatch.setattr(fingerprint, "IR_SCHEMA_VERSION", "999")
        assert compile_digest(net, node) != before

    def test_compiler_version_bump_evicts_cached_artifacts(
        self, monkeypatch
    ):
        """Artifacts fingerprinted under the pre-IR compiler ("2") are
        unreachable under "3": the cache rebuilds instead of serving a
        stale pre-IR placement."""
        from repro.sweep.cache import CompileCache

        net = zoo.load("TinyMLP")
        node = single_precision_node()
        cache = CompileCache()
        builds = []

        monkeypatch.setattr(fingerprint, "COMPILER_VERSION", "2")
        old_digest = compile_digest(net, node, artifact="mapping")
        cache.get("mapping", old_digest, lambda: builds.append("old") or 1)

        monkeypatch.setattr(fingerprint, "COMPILER_VERSION", "3")
        new_digest = compile_digest(net, node, artifact="mapping")
        assert new_digest != old_digest
        cache.get("mapping", new_digest, lambda: builds.append("new") or 2)
        assert builds == ["old", "new"]
