"""Tests for the one-stop simulation report."""

import pytest

from repro.arch import single_precision_node
from repro.dnn import zoo
from repro.sim.report import full_report


@pytest.fixture(scope="module")
def report():
    return full_report(zoo.alexnet(), single_precision_node())


class TestFullReport:
    def test_sections_present(self, report):
        text = report.render()
        for fragment in (
            "simulation report: AlexNet",
            "Mapping (compiler STEP1-6)",
            "bottleneck stage:",
            "initiation interval",
            "comp_mem",
            "GFLOPs/W",
            "mJ/",
            "sync cycles",
        ):
            assert fragment in text

    def test_components_consistent(self, report):
        assert report.performance.network == "AlexNet"
        assert report.energy.network == "AlexNet"
        assert report.sync.network == "AlexNet"
        # The timeline's bottleneck matches the performance bottleneck's
        # latency class (the training pipeline's slowest stage).
        assert report.timeline.initiation_interval == pytest.approx(
            report.timeline.bottleneck.cycles
        )

    def test_report_reuses_given_mapping(self):
        from repro.compiler import map_network

        node = single_precision_node()
        net = zoo.alexnet()
        mapping = map_network(net, node)
        rep = full_report(net, node, mapping=mapping)
        assert rep.mapping is mapping
