"""Tests for the CSV figure-data export."""

import csv

import pytest

from repro.bench.export import export_all
from repro.dnn import zoo


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    directory = tmp_path_factory.mktemp("figures")
    return directory, export_all(directory)


class TestExport:
    def test_all_figures_written(self, exported):
        directory, paths = exported
        names = {p.name for p in paths}
        assert names == {
            "fig01_flops_growth.csv",
            "fig16_sp_throughput.csv",
            "fig17_hp_throughput.csv",
            "fig18_gpu_speedup.csv",
            "fig19_alexnet_utilization.csv",
            "fig20_power_efficiency.csv",
            "fig21_link_utilization.csv",
        }
        for p in paths:
            assert p.exists() and p.stat().st_size > 0

    def _read(self, directory, name):
        with (directory / name).open() as handle:
            return list(csv.DictReader(handle))

    def test_throughput_rows_cover_suite(self, exported):
        directory, _ = exported
        rows = self._read(directory, "fig16_sp_throughput.csv")
        assert {r["network"] for r in rows} == set(zoo.BENCHMARKS)
        for row in rows:
            assert float(row["train_img_s"]) > 0
            assert 0 < float(row["pe_util"]) <= 1

    def test_speedup_rows(self, exported):
        directory, _ = exported
        rows = self._read(directory, "fig18_gpu_speedup.csv")
        assert len(rows) == 4 * 5  # networks x frameworks
        assert all(float(r["speedup"]) > 1 for r in rows)

    def test_link_rows_bounded(self, exported):
        directory, _ = exported
        for row in self._read(directory, "fig21_link_utilization.csv"):
            for key, value in row.items():
                if key != "network":
                    assert 0.0 <= float(value) <= 1.0
