"""Golden-file pins for the compile pipeline.

``tests/data/pipeline_baseline.json`` was recorded from the pre-IR
compiler: program disassembly digests, engine run statistics, output
digests and analytical throughput for every zoo network.  These tests
pin the refactored pass pipeline to it — the IR introduction must be
semantics-preserving down to the emitted instruction bytes — and close
the round trip: an IR serialised to JSON, deserialised, and re-lowered
produces byte-identical ISA programs.
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.arch import single_precision_node
from repro.compiler.codegen import ForwardCompiler, compile_forward
from repro.compiler.codegen_dag import DagForwardCompiler, compile_dag_forward
from repro.compiler.codegen_training import TrainingCompiler, compile_training
from repro.compiler.ir import MappingIR
from repro.compiler.passes.lower import LowerPass
from repro.compiler.passes.manager import PassContext, PassManager
from repro.dnn import zoo
from repro.functional.reference import ReferenceModel
from repro.sim import simulate

BASELINE = json.loads(
    (Path(__file__).parent / "data" / "pipeline_baseline.json").read_text()
)

ENGINE_FORWARD = [("TinyCNN", 2), ("TinyCNN", 3), ("TinyMLP", 2)]
ENGINE_DAG = [("TinyCNN", 2), ("LeNet-5", 2), ("TinyMLP", 2)]
ENGINE_TRAINING = [("TinyCNN", 1), ("TinyCNN", 2), ("TinyMLP", 1)]


def digest(programs):
    text = "\n".join(p.disassemble() for p in programs)
    return hashlib.sha256(text.encode()).hexdigest()


def image_for(net, seed=0):
    shape = net.input.output_shape
    rng = np.random.default_rng(seed)
    return rng.normal(
        0, 1, (shape.count, shape.height, shape.width)
    ).astype(np.float32)


def relower(source_compiler, minibatch=1, learning_rate=(1, 100)):
    """Serialise the compiled IR, deserialise it, and run the lowering
    alone against a *fresh* compiler's partition (the tile allocator is
    stateful, so re-lowering needs a clean one)."""
    net = zoo.load(source_compiler.net.name)
    model = ReferenceModel(net, seed=0)
    kwargs = {}
    if isinstance(source_compiler, TrainingCompiler):
        kwargs["minibatch"] = minibatch
    fresh = type(source_compiler)(
        net, model, rows=source_compiler.rows, **kwargs
    )
    ir = MappingIR.from_json(source_compiler.ir.to_json())
    ctx = PassContext(
        net=fresh.net,
        model=fresh.model,
        chip=fresh.chip,
        partition=fresh.partition,
        rows=fresh.rows,
        dialect=fresh.dialect,
        minibatch=minibatch,
        learning_rate=learning_rate,
    )
    PassManager([LowerPass(align=True)]).run(ir, ctx)
    return ctx.programs + ctx.update_programs


class TestEngineForwardGolden:
    @pytest.mark.parametrize("name,rows", ENGINE_FORWARD)
    def test_sequential_matches_baseline(self, name, rows):
        pin = BASELINE["engine"][f"{name}/r{rows}/seq"]
        net = zoo.load(name)
        compiled = compile_forward(net, ReferenceModel(net, seed=0),
                                   rows=rows)
        assert digest(compiled.programs) == pin["program_sha"]
        # The pins record per-instruction engine makespans; superop
        # fusion intentionally compresses stall rounds (outputs and
        # instruction counts are pinned bit-identical either way — see
        # test_engine_fastpath's fusion tests).
        out, report = compiled.run(image_for(net), fused=False)
        assert report.cycles == pin["cycles"]
        assert report.instructions == pin["instructions"]
        assert hashlib.sha256(out.tobytes()).hexdigest() == pin["out_sha"]
        fused_out, fused_report = compiled.run(image_for(net))
        assert np.array_equal(fused_out, out)
        assert fused_report.instructions == pin["instructions"]

    @pytest.mark.parametrize("name,rows", ENGINE_DAG)
    def test_dag_matches_baseline(self, name, rows):
        pin = BASELINE["engine"][f"{name}/r{rows}/dag"]
        net = zoo.load(name)
        compiled = compile_dag_forward(net, ReferenceModel(net, seed=0),
                                       rows=rows)
        assert digest(compiled.programs) == pin["program_sha"]
        out, report = compiled.run(image_for(net), fused=False)
        assert report.cycles == pin["cycles"]
        assert report.instructions == pin["instructions"]
        assert hashlib.sha256(out.tobytes()).hexdigest() == pin["out_sha"]
        fused_out, fused_report = compiled.run(image_for(net))
        assert np.array_equal(fused_out, out)
        assert fused_report.instructions == pin["instructions"]


class TestEngineTrainingGolden:
    @pytest.mark.parametrize("name,mb", ENGINE_TRAINING)
    def test_training_matches_baseline(self, name, mb):
        pin = BASELINE["training"][f"{name}/mb{mb}"]
        net = zoo.load(name)
        compiled = compile_training(net, ReferenceModel(net, seed=0),
                                    rows=2, minibatch=mb)
        assert digest(compiled.forward.programs) == pin["program_sha"]
        out, loss, report = compiled.train_step(image_for(net, seed=1), 1)
        assert report.cycles == pin["cycles"]
        assert report.instructions == pin["instructions"]
        assert round(float(loss), 6) == pin["loss"]
        assert hashlib.sha256(out.tobytes()).hexdigest() == pin["out_sha"]


class TestRelowerRoundTrip:
    """serialise -> deserialise -> re-lower == byte-identical programs."""

    @pytest.mark.parametrize("name,cls", [
        ("TinyCNN", ForwardCompiler),
        ("TinyMLP", ForwardCompiler),
        ("TinyCNN", DagForwardCompiler),
        ("LeNet-5", DagForwardCompiler),
    ])
    def test_forward_relower_is_byte_identical(self, name, cls):
        net = zoo.load(name)
        compiler = cls(net, ReferenceModel(net, seed=0), rows=2)
        compiled = compiler.compile()
        assert digest(relower(compiler)) == digest(compiled.programs)

    @pytest.mark.parametrize("name,mb", ENGINE_TRAINING)
    def test_training_relower_is_byte_identical(self, name, mb):
        net = zoo.load(name)
        compiler = TrainingCompiler(
            net, ReferenceModel(net, seed=0), rows=2, minibatch=mb
        )
        compiled = compiler.compile_training()
        assert digest(relower(compiler, minibatch=mb)) == digest(
            compiled.forward.programs
        )


class TestAnalyticalGolden:
    @pytest.mark.parametrize(
        "name", sorted(zoo.BENCHMARKS) + sorted(zoo.EXTRAS)
    )
    def test_throughput_matches_baseline(self, name):
        pin = BASELINE["analytical"][name]
        result = simulate(zoo.load(name), single_precision_node())
        assert round(result.bottleneck.cycles, 3) == (
            pin["bottleneck_cycles"]
        )
        assert round(result.training_images_per_s, 3) == (
            pin["train_images_per_s"]
        )
        assert round(result.evaluation_images_per_s, 3) == (
            pin["eval_images_per_s"]
        )
