"""End-to-end tests: compiled ISA programs reproduce the golden model."""

import numpy as np
import pytest

from repro.compiler.codegen import compile_forward
from repro.compiler.partition import partition_sequential
from repro.dnn.builder import NetworkBuilder
from repro.dnn.zoo import tiny_cnn, tiny_mlp
from repro.errors import MappingError
from repro.functional import ReferenceModel
from repro.isa.instructions import InstrGroup, Opcode


def model_with_biases(net, seed=3):
    model = ReferenceModel(net, seed=seed)
    for st in model.state.values():
        if st.bias is not None:
            st.bias += np.linspace(-0.1, 0.1, st.bias.size).astype(
                np.float32
            )
    return model


def random_image(net, seed=0):
    shape = net.input.output_shape
    rng = np.random.default_rng(seed)
    return rng.normal(
        0, 1, (shape.count, shape.height, shape.width)
    ).astype(np.float32)


class TestEngineMatchesGoldenModel:
    @pytest.mark.parametrize("rows", [1, 2, 3, 4])
    def test_tiny_cnn(self, rows):
        net = tiny_cnn(num_classes=5, in_size=12)
        model = model_with_biases(net)
        compiled = compile_forward(net, model, rows=rows)
        img = random_image(net)
        want = model.forward(img)
        got, report = compiled.run(img)
        np.testing.assert_allclose(got, want, atol=1e-4)
        assert report.instructions == compiled.instruction_count

    def test_tiny_mlp(self):
        net = tiny_mlp(num_classes=4, in_features=6, hidden=9)
        model = model_with_biases(net)
        compiled = compile_forward(net, model, rows=2)
        img = random_image(net, seed=5)
        want = model.forward(img)
        got, _ = compiled.run(img)
        np.testing.assert_allclose(got, want, atol=1e-5)

    def test_multiple_images_reuse_compiled_programs(self):
        net = tiny_cnn(num_classes=3, in_size=8)
        model = model_with_biases(net)
        compiled = compile_forward(net, model, rows=2)
        for seed in range(3):
            img = random_image(net, seed=seed)
            got, _ = compiled.run(img)
            np.testing.assert_allclose(got, model.forward(img), atol=1e-4)

    def test_avg_pool_network(self):
        from repro.dnn.layers import Activation, PoolMode

        b = NetworkBuilder("avgnet")
        b.input(2, 8)
        b.conv(4, kernel=3, pad=1)
        b.pool(2, mode=PoolMode.AVG)
        b.fc(3, activation=Activation.SOFTMAX)
        net = b.build()
        model = model_with_biases(net)
        compiled = compile_forward(net, model, rows=2)
        img = random_image(net)
        got, _ = compiled.run(img)
        np.testing.assert_allclose(got, model.forward(img), atol=1e-5)

    def test_strided_conv(self):
        from repro.dnn.layers import Activation

        b = NetworkBuilder("strided")
        b.input(2, 9)
        b.conv(4, kernel=3, stride=2)
        b.fc(3, activation=Activation.SOFTMAX)
        net = b.build()
        model = model_with_biases(net)
        compiled = compile_forward(net, model, rows=2)
        img = random_image(net)
        got, _ = compiled.run(img)
        np.testing.assert_allclose(got, model.forward(img), atol=1e-5)


class TestSynchronizationUnderScheduling:
    def test_blocked_accesses_resolve(self):
        """Tracker blocking occurs and resolves: the schedule forces
        consumers to wait on producers (Sec 3.2.4 in action)."""
        net = tiny_cnn(num_classes=4, in_size=12)
        model = model_with_biases(net)
        compiled = compile_forward(net, model, rows=2)
        _, report = compiled.run(random_image(net))
        assert report.blocked_reads > 0
        assert report.cycles > 0


class TestProgramStructure:
    def test_one_program_per_computing_tile(self):
        net = tiny_cnn(num_classes=5, in_size=12)
        model = model_with_biases(net)
        compiled = compile_forward(net, model, rows=2)
        # Every non-input layer block gets a program.
        expected = sum(
            len(compiled.partition.blocks_of(n.name))
            for n in net
            if n.name != "input"
        )
        assert len(compiled.programs) == expected

    def test_programs_validate_and_use_all_groups(self):
        net = tiny_cnn(num_classes=5, in_size=12)
        model = model_with_biases(net)
        compiled = compile_forward(net, model, rows=2)
        groups = set()
        for prog in compiled.programs:
            prog.validate()
            groups.update(prog.counts_by_group())
        assert InstrGroup.COARSE in groups
        assert InstrGroup.OFFLOAD in groups
        assert InstrGroup.TRANSFER in groups
        assert InstrGroup.TRACK in groups

    def test_prologues_aligned(self):
        net = tiny_cnn(num_classes=5, in_size=12)
        model = model_with_biases(net)
        compiled = compile_forward(net, model, rows=2)

        def data_start(prog):
            for pc, instr in enumerate(prog):
                if instr.group not in (
                    InstrGroup.TRACK, InstrGroup.SCALAR
                ):
                    return pc
            return len(prog)

        def tracker_end(prog):
            last = 0
            for pc, instr in enumerate(prog):
                if instr.group is InstrGroup.TRACK:
                    last = pc
            return last

        earliest_data = min(data_start(p) for p in compiled.programs)
        latest_tracker = max(tracker_end(p) for p in compiled.programs)
        assert latest_tracker < earliest_data

    def test_disassembly_readable(self):
        net = tiny_mlp()
        model = model_with_biases(net)
        compiled = compile_forward(net, model, rows=1)
        listing = compiled.programs[0].disassemble()
        assert "MATMUL" in listing or "MEMTRACK" in listing


class TestUnsupportedShapes:
    def test_grouped_conv_rejected(self):
        b = NetworkBuilder("grouped")
        b.input(4, 8)
        b.conv(4, kernel=3, pad=1, groups=2)
        b.fc(2)
        net = b.build()
        model = ReferenceModel(net)
        with pytest.raises(MappingError):
            compile_forward(net, model)

    def test_padded_pool_rejected(self):
        b = NetworkBuilder("padpool")
        b.input(2, 8)
        b.conv(2, kernel=3, pad=1)
        b.pool(3, stride=2, pad=1)
        b.fc(2)
        net = b.build()
        model = ReferenceModel(net)
        with pytest.raises(MappingError):
            compile_forward(net, model)

    def test_branching_network_rejected(self):
        b = NetworkBuilder("dag")
        b.input(2, 8)
        trunk = b.conv(2, kernel=3, pad=1)
        left = b.conv(2, kernel=1, inputs=[trunk])
        b.concat([left, trunk])
        net = b.build()
        model = ReferenceModel(net)
        with pytest.raises(MappingError):
            compile_forward(net, model)

    def test_foreign_model_rejected(self):
        net = tiny_mlp()
        other = ReferenceModel(tiny_mlp())
        with pytest.raises(MappingError):
            compile_forward(net, other)


class TestPartition:
    def test_blocks_cover_features(self):
        net = tiny_cnn(num_classes=5, in_size=12)
        part = partition_sequential(net, rows=3, capacity_words=1 << 17)
        for node in net:
            blocks = part.blocks_of(node.name)
            covered = sorted(
                f
                for b in blocks
                for f in range(
                    b.first_feature, b.first_feature + b.feature_count
                )
            )
            assert covered == list(range(node.output_shape.count))

    def test_final_layer_single_row(self):
        net = tiny_cnn(num_classes=5, in_size=12)
        part = partition_sequential(net, rows=3, capacity_words=1 << 17)
        assert len(part.blocks_of(net.output.name)) == 1

    def test_feature_address_bounds(self):
        net = tiny_mlp()
        part = partition_sequential(net, rows=2, capacity_words=1 << 16)
        block = part.blocks_of("fc1")[0]
        with pytest.raises(MappingError):
            block.feature_address(10_000)

    def test_capacity_overflow_detected(self):
        net = tiny_cnn(num_classes=5, in_size=12)
        with pytest.raises(MappingError):
            partition_sequential(net, rows=1, capacity_words=16)


class TestMemoryMap:
    def test_memory_map_lists_every_tile_and_block(self):
        net = tiny_cnn(num_classes=4, in_size=8)
        model = model_with_biases(net)
        compiled = compile_forward(net, model, rows=2)
        text = compiled.partition.memory_map()
        assert "input/out" in text
        assert "conv1/kernels" in text
        assert "fc2/pre" in text
        # Every allocated tile appears with a utilization figure.
        for (col, row) in compiled.partition.allocators:
            assert f"tile c{col} r{row}" in text

    def test_tile_occupancy_bounded_and_consistent(self):
        net = tiny_cnn(num_classes=4, in_size=8)
        model = model_with_biases(net)
        compiled = compile_forward(net, model, rows=2)
        occupancy = compiled.partition.tile_occupancy()
        assert occupancy
        for value in occupancy.values():
            assert 0.0 <= value <= 1.0
        # Bump allocation: cursor equals the sum of block sizes.
        for key, alloc in compiled.partition.allocators.items():
            assert alloc.cursor == sum(
                words for _, words in alloc.blocks.values()
            )
