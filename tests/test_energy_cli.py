"""Tests for the energy module and the command-line interface."""

import dataclasses
import json

import pytest

from repro.arch import single_precision_node
from repro.cli import main
from repro.dnn import zoo
from repro.errors import SimulationError
from repro.sim import simulate
from repro.sim.energy import IMAGENET_IMAGES, EnergyReport, energy_report


@pytest.fixture(scope="module")
def alexnet_result():
    return simulate(zoo.alexnet(), single_precision_node())


class TestEnergy:
    def test_energy_balance(self, alexnet_result):
        report = energy_report(alexnet_result)
        total = report.logic_j + report.memory_j + report.interconnect_j
        assert total == pytest.approx(
            report.joules_per_training_image, rel=1e-6
        )

    def test_evaluation_cheaper_than_training(self, alexnet_result):
        report = energy_report(alexnet_result)
        assert (
            report.joules_per_evaluation_image
            < report.joules_per_training_image
        )

    def test_stage_energy_sums_to_logic(self, alexnet_result):
        report = energy_report(alexnet_result)
        assert sum(report.stage_energy.values()) == pytest.approx(
            report.logic_j, rel=1e-6
        )

    def test_epoch_energy_scaling(self, alexnet_result):
        report = energy_report(alexnet_result)
        expected = (
            report.joules_per_training_image * IMAGENET_IMAGES / 3.6e6
        )
        assert report.kilowatt_hours_per_epoch == pytest.approx(expected)
        # AlexNet at tens of mJ/image: an epoch costs a handful of kWh.
        assert 0.001 < report.kilowatt_hours_per_epoch < 100

    def test_bigger_network_costs_more_energy_per_image(self):
        node = single_precision_node()
        small = energy_report(simulate(zoo.alexnet(), node))
        big = energy_report(simulate(zoo.vgg_e(), node))
        assert (
            big.joules_per_training_image
            > small.joules_per_training_image
        )

    def test_describe(self, alexnet_result):
        text = energy_report(alexnet_result).describe()
        assert "mJ" in text and "kWh" in text
        assert "hottest stage" in text

    def test_zero_training_throughput_rejected(self, alexnet_result):
        broken = dataclasses.replace(
            alexnet_result, training_images_per_s=0.0
        )
        with pytest.raises(SimulationError, match="zero throughput"):
            energy_report(broken)

    def test_zero_evaluation_throughput_rejected(self, alexnet_result):
        """Regression: this used to divide by zero instead of raising."""
        broken = dataclasses.replace(
            alexnet_result, evaluation_images_per_s=0.0
        )
        with pytest.raises(
            SimulationError, match="zero evaluation throughput"
        ):
            energy_report(broken)

    def test_describe_without_stage_attribution(self, alexnet_result):
        """Regression: `describe` crashed on max() of an empty dict."""
        report = dataclasses.replace(
            energy_report(alexnet_result), stage_energy={}
        )
        text = report.describe()
        assert "mJ" in text and "hottest" not in text


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "AlexNet" in out and "VGG-E" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "AlexNet"]) == 0
        out = capsys.readouterr().out
        assert "GFLOPs/evaluation" in out
        assert "nD-convolution" in out

    def test_map(self, capsys):
        assert main(["map", "AlexNet"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out and "ConvLayer" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "AlexNet", "--minibatch", "128"]) == 0
        out = capsys.readouterr().out
        assert "img/s" in out and "comp_mem" in out

    def test_simulate_hp(self, capsys):
        assert main(["simulate", "AlexNet", "--hp"]) == 0
        out = capsys.readouterr().out
        assert "scaledeep-hp" in out

    def test_energy(self, capsys):
        assert main(["energy", "AlexNet"]) == 0
        assert "mJ" in capsys.readouterr().out

    def test_compare_gpu(self, capsys):
        assert main(["compare-gpu", "AlexNet"]) == 0
        out = capsys.readouterr().out
        assert "cuDNN-R2" in out and "x" in out

    def test_unknown_network_exits(self):
        with pytest.raises(SystemExit):
            main(["simulate", "LeNet-1998"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_export(self, capsys, tmp_path):
        assert main(["export", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "wrote 7 figure data files" in out
        assert (tmp_path / "fig16_sp_throughput.csv").exists()

    def test_stages(self, capsys):
        assert main(["stages", "AlexNet"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out and "conv2" in out

    def test_report(self, capsys):
        assert main(["report", "AlexNet"]) == 0
        out = capsys.readouterr().out
        for section in ("Mapping", "Throughput", "Nested pipeline",
                        "Link utilization", "Power", "gradient sync"):
            assert section in out

    def test_validate(self, capsys, tmp_path):
        artifact = tmp_path / "BENCH_validate.json"
        assert main([
            "validate", "TinyCNN-8", "WideCNN", "--no-speedup",
            "--out", str(artifact),
        ]) == 0
        out = capsys.readouterr().out
        assert "rank agreement" in out
        assert "validation gate passed" in out
        payload = json.loads(artifact.read_text())
        assert payload["passed"] is True
        assert {r["network"] for r in payload["rows"]} == {
            "TinyCNN-8", "WideCNN",
        }

    def test_validate_json_output(self, capsys):
        assert main(["validate", "TinyCNN-8", "--no-speedup",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1 and payload["passed"] is True

    def test_validate_accepts_zoo_aliases(self, capsys):
        assert main(["validate", "tiny", "--no-speedup"]) == 0
        assert "TinyCNN" in capsys.readouterr().out

    def test_validate_unknown_network_exits(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["validate", "nosuchnet"])
        assert err.value.code == 2
        assert "nosuchnet" in capsys.readouterr().err
