"""Tests for the energy module and the command-line interface."""

import pytest

from repro.arch import single_precision_node
from repro.cli import main
from repro.dnn import zoo
from repro.sim import simulate
from repro.sim.energy import IMAGENET_IMAGES, EnergyReport, energy_report


@pytest.fixture(scope="module")
def alexnet_result():
    return simulate(zoo.alexnet(), single_precision_node())


class TestEnergy:
    def test_energy_balance(self, alexnet_result):
        report = energy_report(alexnet_result)
        total = report.logic_j + report.memory_j + report.interconnect_j
        assert total == pytest.approx(
            report.joules_per_training_image, rel=1e-6
        )

    def test_evaluation_cheaper_than_training(self, alexnet_result):
        report = energy_report(alexnet_result)
        assert (
            report.joules_per_evaluation_image
            < report.joules_per_training_image
        )

    def test_stage_energy_sums_to_logic(self, alexnet_result):
        report = energy_report(alexnet_result)
        assert sum(report.stage_energy.values()) == pytest.approx(
            report.logic_j, rel=1e-6
        )

    def test_epoch_energy_scaling(self, alexnet_result):
        report = energy_report(alexnet_result)
        expected = (
            report.joules_per_training_image * IMAGENET_IMAGES / 3.6e6
        )
        assert report.kilowatt_hours_per_epoch == pytest.approx(expected)
        # AlexNet at tens of mJ/image: an epoch costs a handful of kWh.
        assert 0.001 < report.kilowatt_hours_per_epoch < 100

    def test_bigger_network_costs_more_energy_per_image(self):
        node = single_precision_node()
        small = energy_report(simulate(zoo.alexnet(), node))
        big = energy_report(simulate(zoo.vgg_e(), node))
        assert (
            big.joules_per_training_image
            > small.joules_per_training_image
        )

    def test_describe(self, alexnet_result):
        text = energy_report(alexnet_result).describe()
        assert "mJ" in text and "kWh" in text


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "AlexNet" in out and "VGG-E" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "AlexNet"]) == 0
        out = capsys.readouterr().out
        assert "GFLOPs/evaluation" in out
        assert "nD-convolution" in out

    def test_map(self, capsys):
        assert main(["map", "AlexNet"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out and "ConvLayer" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "AlexNet", "--minibatch", "128"]) == 0
        out = capsys.readouterr().out
        assert "img/s" in out and "comp_mem" in out

    def test_simulate_hp(self, capsys):
        assert main(["simulate", "AlexNet", "--hp"]) == 0
        out = capsys.readouterr().out
        assert "scaledeep-hp" in out

    def test_energy(self, capsys):
        assert main(["energy", "AlexNet"]) == 0
        assert "mJ" in capsys.readouterr().out

    def test_compare_gpu(self, capsys):
        assert main(["compare-gpu", "AlexNet"]) == 0
        out = capsys.readouterr().out
        assert "cuDNN-R2" in out and "x" in out

    def test_unknown_network_exits(self):
        with pytest.raises(SystemExit):
            main(["simulate", "LeNet-1998"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_export(self, capsys, tmp_path):
        assert main(["export", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "wrote 7 figure data files" in out
        assert (tmp_path / "fig16_sp_throughput.csv").exists()

    def test_stages(self, capsys):
        assert main(["stages", "AlexNet"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out and "conv2" in out

    def test_report(self, capsys):
        assert main(["report", "AlexNet"]) == 0
        out = capsys.readouterr().out
        for section in ("Mapping", "Throughput", "Nested pipeline",
                        "Link utilization", "Power", "gradient sync"):
            assert section in out
