"""Tests for the multi-node scale-out layer: SystemConfig, parallelism
strategies, the inter-node collective, system performance/TCO overlays,
fingerprint folding and the sweep's nodes/strategy axes."""

import json

import pytest

from repro.arch import load_preset, single_precision_node
from repro.arch.system import (
    DEFAULT_FABRIC_BANDWIDTH,
    GradientSync,
    Parallelism,
    ParallelismStrategy,
    SystemConfig,
    TCOModel,
    make_system,
)
from repro.compiler import fingerprint
from repro.compiler.fingerprint import compile_digest, system_fingerprint
from repro.dnn import zoo
from repro.errors import ConfigError, SimulationError
from repro.sim.allreduce import internode_allreduce_cycles
from repro.sim.perf import simulate, simulate_system
from repro.sim.tco import tco_report
from repro.sweep.runner import SweepResult, expand_jobs, run_sweep

FREQ = 600e6


@pytest.fixture(scope="module")
def node():
    return single_precision_node()


@pytest.fixture(scope="module")
def googlenet_result(node):
    return simulate(zoo.googlenet(), node)


# ---------------------------------------------------------------------------
# ParallelismStrategy
# ---------------------------------------------------------------------------
class TestParallelismStrategy:
    @pytest.mark.parametrize(
        "token, kind, sync, group",
        [
            ("data", Parallelism.DATA, GradientSync.RING, 1),
            ("data/tree", Parallelism.DATA, GradientSync.TREE, 1),
            ("model", Parallelism.MODEL, GradientSync.RING, 1),
            ("hybrid", Parallelism.HYBRID, GradientSync.RING, 2),
            ("hybrid:4", Parallelism.HYBRID, GradientSync.RING, 4),
            ("hybrid:2/tree", Parallelism.HYBRID, GradientSync.TREE, 2),
            ("  DATA/RING ", Parallelism.DATA, GradientSync.RING, 1),
        ],
    )
    def test_parse(self, token, kind, sync, group):
        s = ParallelismStrategy.parse(token)
        assert s.kind is kind
        assert s.gradient_sync is sync
        assert s.model_group == group

    def test_token_round_trips(self):
        for token in ("data/ring", "model/tree", "hybrid:4/ring"):
            s = ParallelismStrategy.parse(token)
            assert s.token == token
            assert ParallelismStrategy.parse(s.token) == s

    @pytest.mark.parametrize(
        "bad", ["pipeline", "data/mesh", "hybrid:x", "hybrid:0", ""]
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ConfigError):
            ParallelismStrategy.parse(bad)

    def test_group_only_for_hybrid(self):
        with pytest.raises(ConfigError):
            ParallelismStrategy(kind=Parallelism.DATA, model_group=2)

    def test_describe(self):
        text = ParallelismStrategy.parse("hybrid:2/tree").describe()
        assert "hybrid" in text and "tree" in text


# ---------------------------------------------------------------------------
# SystemConfig / make_system
# ---------------------------------------------------------------------------
class TestSystemConfig:
    def test_single_node_defaults(self, node):
        system = make_system(node)
        assert system.node_count == 1
        assert system.replicas == 1
        assert system.model_shards == 1
        assert system.peak_flops == node.peak_flops
        assert system.tile_count == node.tile_count

    def test_system_scales_node_quantities(self, node):
        system = make_system(node, 4)
        assert system.peak_flops == 4 * node.peak_flops
        assert system.comp_tile_count == 4 * node.comp_tile_count
        assert system.mem_tile_count == 4 * node.mem_tile_count

    def test_replica_shard_split(self, node):
        system = make_system(node, 8, "hybrid:2")
        assert system.model_shards == 2
        assert system.replicas == 4
        model = make_system(node, 4, "model")
        assert model.model_shards == 4
        assert model.replicas == 1

    def test_hybrid_group_clamps_to_node_count(self, node):
        system = make_system(node, 2, "hybrid:4")
        assert system.strategy.model_group == 2
        degenerate = make_system(node, 1, "hybrid:4")
        assert degenerate.strategy.model_group == 1
        assert degenerate.replicas == 1

    def test_indivisible_group_rejected(self, node):
        with pytest.raises(ConfigError):
            make_system(node, 6, "hybrid:4")

    def test_validation(self, node):
        with pytest.raises(ConfigError):
            make_system(node, 0)
        with pytest.raises(ConfigError):
            make_system(node, 2, fabric_bandwidth=0.0)
        with pytest.raises(ConfigError):
            make_system(node, 2, fabric_latency_s=-1.0)

    def test_describe_labels_scopes(self, node):
        text = make_system(node, 4).describe()
        assert "per-node:" in text
        assert "system:" in text
        assert "4 node(s)" in text


# ---------------------------------------------------------------------------
# Inter-node collective
# ---------------------------------------------------------------------------
class TestInternodeAllReduce:
    def test_single_node_free(self):
        assert internode_allreduce_cycles(1e6, 1, 50e9, FREQ) == 0.0

    def test_zero_payload_free(self):
        assert internode_allreduce_cycles(0.0, 8, 50e9, FREQ) == 0.0

    def test_ring_matches_closed_form(self):
        cycles = internode_allreduce_cycles(1e6, 4, 50e9, FREQ)
        assert cycles == pytest.approx(2 * 3 / 4 * 1e6 / (50e9 / FREQ))

    def test_tree_matches_closed_form(self):
        cycles = internode_allreduce_cycles(
            1e6, 4, 50e9, FREQ, sync=GradientSync.TREE
        )
        assert cycles == pytest.approx(2 * 2 * 1e6 / (50e9 / FREQ))

    def test_latency_term(self):
        base = internode_allreduce_cycles(1e6, 4, 50e9, FREQ)
        with_lat = internode_allreduce_cycles(
            1e6, 4, 50e9, FREQ, latency_s=1e-6
        )
        assert with_lat == pytest.approx(base + 2 * 3 * 1e-6 * FREQ)

    def test_tree_wins_on_latency_ring_on_bandwidth(self):
        """The classic crossover: tiny payloads favour the log-depth
        tree, huge payloads the bandwidth-optimal ring."""
        kw = dict(nodes=16, fabric_bandwidth=50e9, frequency_hz=FREQ,
                  latency_s=5e-6)
        tiny_ring = internode_allreduce_cycles(1e3, sync=GradientSync.RING, **kw)
        tiny_tree = internode_allreduce_cycles(1e3, sync=GradientSync.TREE, **kw)
        assert tiny_tree < tiny_ring
        big_ring = internode_allreduce_cycles(1e9, sync=GradientSync.RING, **kw)
        big_tree = internode_allreduce_cycles(1e9, sync=GradientSync.TREE, **kw)
        assert big_ring < big_tree

    def test_validation(self):
        with pytest.raises(SimulationError):
            internode_allreduce_cycles(1e6, 0, 50e9, FREQ)
        with pytest.raises(SimulationError):
            internode_allreduce_cycles(1e6, 4, 0.0, FREQ)
        with pytest.raises(SimulationError):
            internode_allreduce_cycles(-1.0, 4, 50e9, FREQ)


# ---------------------------------------------------------------------------
# simulate_system
# ---------------------------------------------------------------------------
class TestSimulateSystem:
    def test_one_node_is_exactly_the_node(self, node, googlenet_result):
        """The byte-compatibility contract: N=1 system quantities equal
        their per-node twins to the last bit, not approximately."""
        system = make_system(node)
        res = simulate_system(
            zoo.googlenet(), system, node_result=googlenet_result
        )
        assert res.system_training_images_per_s == (
            googlenet_result.training_images_per_s
        )
        assert res.system_evaluation_images_per_s == (
            googlenet_result.evaluation_images_per_s
        )
        assert res.system_gflops_per_watt == googlenet_result.gflops_per_watt
        assert res.system_power_w == googlenet_result.average_power.total_w
        assert res.internode_sync_s == 0.0
        assert res.sync_fraction == 0.0
        assert res.scaling_efficiency == 1.0
        assert res.speedup == 1.0

    def test_data_parallel_speedup_monotonic_with_rolloff(
        self, node, googlenet_result
    ):
        """More nodes always help, but each one helps less: the
        serialized gradient all-reduce bends the curve away from
        linear."""
        net = zoo.googlenet()
        results = [
            simulate_system(
                net, make_system(node, n), node_result=googlenet_result
            )
            for n in (1, 2, 4, 8)
        ]
        rates = [r.system_training_images_per_s for r in results]
        assert rates == sorted(rates)
        effs = [r.scaling_efficiency for r in results]
        assert effs[0] == 1.0
        assert all(a >= b for a, b in zip(effs, effs[1:]))
        assert effs[-1] < 0.95  # rolloff is visible by 8 nodes
        assert results[-1].speedup > 4.0  # but still clearly scaling

    def test_eval_scales_linearly_under_data_parallelism(
        self, node, googlenet_result
    ):
        """Inference has no gradients to reduce: evaluation throughput
        is embarrassingly parallel across replicas."""
        res = simulate_system(
            zoo.googlenet(), make_system(node, 8),
            node_result=googlenet_result,
        )
        assert res.system_evaluation_images_per_s == pytest.approx(
            8 * googlenet_result.evaluation_images_per_s
        )

    def test_sync_fraction_grows_with_nodes(self, node, googlenet_result):
        net = zoo.googlenet()
        two = simulate_system(
            net, make_system(node, 2), node_result=googlenet_result
        )
        eight = simulate_system(
            net, make_system(node, 8), node_result=googlenet_result
        )
        assert 0.0 < two.sync_fraction < eight.sync_fraction < 1.0

    def test_model_parallel_is_fabric_capped(self, node):
        """Sharding AlexNet layers across nodes ships boundary
        activations over the fabric — far slower than the on-node
        links, so the fabric caps throughput below linear scaling."""
        net = zoo.alexnet()
        base = simulate(net, node)
        res = simulate_system(
            net, make_system(node, 4, "model"), node_result=base
        )
        assert res.system_training_images_per_s < (
            4 * base.training_images_per_s
        )

    def test_hybrid_shrinks_gradient_payload(self, node, googlenet_result):
        """hybrid:2 halves the all-reduced payload per replica group,
        so its sync time stays below pure data parallelism's."""
        net = zoo.googlenet()
        data = simulate_system(
            net, make_system(node, 8, "data"), node_result=googlenet_result
        )
        hybrid = simulate_system(
            net, make_system(node, 8, "hybrid:2"),
            node_result=googlenet_result,
        )
        assert hybrid.internode_sync_s < data.internode_sync_s

    def test_power_scales_with_node_count(self, node, googlenet_result):
        res = simulate_system(
            zoo.googlenet(), make_system(node, 4),
            node_result=googlenet_result,
        )
        assert res.system_power_w == pytest.approx(
            4 * googlenet_result.average_power.total_w
        )

    def test_describe(self, node, googlenet_result):
        res = simulate_system(
            zoo.googlenet(), make_system(node, 4),
            node_result=googlenet_result,
        )
        text = res.describe()
        assert "per node" in text
        assert "scaling efficiency" in text
        assert "data/ring" in text


# ---------------------------------------------------------------------------
# TCO
# ---------------------------------------------------------------------------
class TestTCO:
    def test_capex_per_node_hour(self):
        model = TCOModel(
            node_capex_usd=10_000.0,
            fabric_capex_usd_per_node=500.0,
            depreciation_years=3.0,
            electricity_usd_per_kwh=0.10,
            pue=1.5,
            opex_factor=0.5,
        )
        assert model.capex_usd_per_node_hour() == pytest.approx(
            10_500.0 / (3.0 * 8760.0) * 1.5
        )

    def test_model_validation(self):
        kw = dict(
            node_capex_usd=1.0, fabric_capex_usd_per_node=0.0,
            depreciation_years=1.0, electricity_usd_per_kwh=0.1,
            pue=1.2, opex_factor=0.0,
        )
        with pytest.raises(ConfigError):
            TCOModel(**{**kw, "depreciation_years": 0.0})
        with pytest.raises(ConfigError):
            TCOModel(**{**kw, "pue": 0.9})
        with pytest.raises(ConfigError):
            TCOModel(**{**kw, "node_capex_usd": -1.0})

    def test_report_composition(self, node, googlenet_result):
        res = simulate_system(
            zoo.googlenet(), make_system(node, 4),
            node_result=googlenet_result,
        )
        tco = tco_report(res)
        assert tco.dollars_per_hour == pytest.approx(
            tco.capex_dollars_per_hour + tco.energy_dollars_per_hour
        )
        assert tco.dollars_per_training_run == pytest.approx(
            tco.training_run_hours * tco.dollars_per_hour
        )
        assert tco.dollars_per_1m_inferences > 0
        assert "$" in tco.describe()

    def test_more_nodes_cost_more_per_hour_but_train_faster(
        self, node, googlenet_result
    ):
        net = zoo.googlenet()
        one = tco_report(simulate_system(
            net, make_system(node, 1), node_result=googlenet_result
        ))
        eight = tco_report(simulate_system(
            net, make_system(node, 8), node_result=googlenet_result
        ))
        assert eight.dollars_per_hour > one.dollars_per_hour
        assert eight.training_run_hours < one.training_run_hours
        # Sub-linear scaling means the bigger system trains the run at
        # a higher total cost — TCO surfaces the efficiency loss as $.
        assert eight.dollars_per_training_run > (
            one.dollars_per_training_run
        )

    def test_rejects_degenerate_inputs(self, node, googlenet_result):
        res = simulate_system(
            zoo.googlenet(), make_system(node),
            node_result=googlenet_result,
        )
        with pytest.raises(SimulationError):
            tco_report(res, epochs=0)


# ---------------------------------------------------------------------------
# Fingerprints and cache eviction
# ---------------------------------------------------------------------------
class TestSystemFingerprint:
    def test_digest_has_a_system_slot(self, node):
        net = zoo.load("TinyMLP")
        single = compile_digest(net, node)
        scaled = compile_digest(
            net, node, system=make_system(node, 4)
        )
        assert single != scaled

    def test_system_shape_changes_the_digest(self, node):
        net = zoo.load("TinyMLP")
        a = compile_digest(net, node, system=make_system(node, 4))
        b = compile_digest(net, node, system=make_system(node, 8))
        c = compile_digest(
            net, node, system=make_system(node, 4, "hybrid:2")
        )
        assert len({a, b, c}) == 3

    def test_system_fingerprint_drops_names(self, node):
        """Cache keys follow structure, not labels: renaming the system
        or its node must not evict anything."""
        from dataclasses import replace

        sys_a = make_system(node, 4)
        sys_b = replace(sys_a, name="something-else")
        assert system_fingerprint(sys_a) == system_fingerprint(sys_b)

    def test_compiler_version_4_evicts_version_3_artifacts(
        self, monkeypatch, node
    ):
        """Artifacts fingerprinted under the pre-system compiler ("3")
        are unreachable under "4": the cache rebuilds instead of
        serving a row that lacks the system slot."""
        from repro.sweep.cache import CompileCache

        net = zoo.load("TinyMLP")
        cache = CompileCache()
        builds = []

        monkeypatch.setattr(fingerprint, "COMPILER_VERSION", "3")
        old_digest = compile_digest(net, node, artifact="mapping")
        cache.get("mapping", old_digest, lambda: builds.append("old") or 1)

        monkeypatch.setattr(fingerprint, "COMPILER_VERSION", "4")
        new_digest = compile_digest(net, node, artifact="mapping")
        assert new_digest != old_digest
        cache.get("mapping", new_digest, lambda: builds.append("new") or 2)
        assert builds == ["old", "new"]


# ---------------------------------------------------------------------------
# Sweep axes
# ---------------------------------------------------------------------------
class TestSweepScaleOut:
    def test_expand_jobs_grid(self):
        jobs = expand_jobs(
            networks=["lenet5"], presets=("sp",),
            nodes=(1, 4), strategies=("data", "hybrid:2"),
        )
        assert len(jobs) == 4
        assert {(j.nodes, j.strategy) for j in jobs} == {
            (1, "data"), (1, "hybrid:2"), (4, "data"), (4, "hybrid:2"),
        }

    def test_expand_jobs_validates_eagerly(self):
        from repro.errors import SweepError

        with pytest.raises(SweepError):
            expand_jobs(networks=["lenet5"], nodes=(0,))
        with pytest.raises(ConfigError):
            expand_jobs(networks=["lenet5"], strategies=("warp",))

    def test_export_fields_cover_scale_out(self):
        for field in (
            "nodes", "strategy", "system_train_images_per_s",
            "scaling_efficiency", "dollars_per_training_run",
            "dollars_per_1m_inferences",
        ):
            assert field in SweepResult.EXPORT_FIELDS

    def test_default_node_sweep_matches_legacy_rows(self):
        """`sweep X` and `sweep X --nodes 1` export identical rows —
        same digests, same numbers, canonicalized strategy token."""
        legacy = run_sweep(
            expand_jobs(networks=["lenet5"]), use_cache=False
        ).results
        explicit = run_sweep(
            expand_jobs(networks=["lenet5"], nodes=(1,),
                        strategies=("data",)),
            use_cache=False,
        ).results
        assert [r.to_row() for r in legacy] == [
            r.to_row() for r in explicit
        ]
        row = legacy[0].to_row()
        assert row["nodes"] == 1
        assert row["strategy"] == "data/ring"
        assert row["system_train_images_per_s"] == (
            row["train_images_per_s"]
        )

    def test_scaled_rows_carry_system_numbers(self):
        report = run_sweep(
            expand_jobs(networks=["lenet5"], nodes=(4,)),
            use_cache=False,
        )
        row = report.results[0].to_row()
        assert row["nodes"] == 4
        assert row["status"] == "ok"
        assert 0.0 < row["scaling_efficiency"] <= 1.0
        # LeNet-5's minibatch slice is so cheap the serialized sync
        # dominates — system throughput is positive but bounded by the
        # ideal 4x (for conv-heavy nets it approaches it; see
        # TestSimulateSystem for the curve).
        assert 0.0 < row["system_train_images_per_s"] <= (
            4 * row["train_images_per_s"]
        )
        assert row["dollars_per_training_run"] > 0
        assert row["dollars_per_1m_inferences"] > 0
        assert row["system_power_w"] == pytest.approx(
            4 * row["total_power_w"]
        )

    def test_rows_serialize(self):
        report = run_sweep(
            expand_jobs(networks=["lenet5"], nodes=(2,)),
            use_cache=False,
        )
        payload = json.dumps([r.to_row() for r in report.results])
        assert "dollars_per_training_run" in payload


# ---------------------------------------------------------------------------
# Scaling-curve export and dashboard
# ---------------------------------------------------------------------------
class TestScalingDashboard:
    @pytest.fixture(scope="class")
    def results(self):
        return run_sweep(
            expand_jobs(
                networks=["lenet5"], nodes=(1, 2, 4),
                strategies=("data", "hybrid:2"),
            ),
            use_cache=False,
        ).results

    def test_series_grouping(self, results):
        from repro.bench.export import sweep_scaling_series

        series = sweep_scaling_series(results)
        # hybrid:2 clamps to hybrid:1 at N=1 — a third strategy token.
        keys = {key[2] for key in series}
        assert "data/ring" in keys and "hybrid:2/ring" in keys
        data = series[("LeNet-5", "sp", "data/ring")]
        assert [row["nodes"] for row in data] == [1, 2, 4]

    def test_series_drop_failed_rows(self, results):
        from dataclasses import replace

        from repro.bench.export import sweep_scaling_series

        broken = [replace(r, status="failed") for r in results]
        assert sweep_scaling_series(broken) == {}

    def test_html_renders_curve_and_tco(self, results, tmp_path):
        from repro.bench.dashboard import sweep_html, write_sweep_html

        html = sweep_html(results)
        assert "Scaling curve" in html
        assert "LeNet-5" in html
        assert "$/training run" in html
        assert "Cheapest training run" in html
        assert html.startswith("<!DOCTYPE html>")
        path = write_sweep_html(results, tmp_path / "scaling.html")
        assert path.read_text() == html


# ---------------------------------------------------------------------------
# Cross-node placement
# ---------------------------------------------------------------------------
class TestSystemPlacement:
    def test_system_contributes_all_clusters(self, node):
        from repro.serve.placement import place_networks

        nets = [zoo.alexnet(), zoo.googlenet()]
        single = place_networks(nets, node)
        scaled = place_networks(nets, make_system(node, 4))
        assert scaled.nodes == 4
        assert sum(t.clusters for t in scaled.tenants) == (
            4 * node.cluster_count
        )
        assert sum(t.rate_qps for t in scaled.tenants) > sum(
            t.rate_qps for t in single.tenants
        )
        assert "on 4 nodes" in scaled.describe()

    def test_one_node_system_matches_bare_node(self, node):
        from repro.serve.placement import place_networks

        nets = [zoo.alexnet(), zoo.googlenet()]
        bare = place_networks(nets, node)
        system = place_networks(nets, make_system(node, 1))
        # Same text modulo the system's name; in particular no
        # "on N nodes" suffix leaks into the 1-node describe().
        assert system.describe().replace(
            system.node, bare.node
        ) == bare.describe()
        assert "nodes" not in system.describe()
        assert [
            (t.network, t.clusters, t.rate_qps) for t in bare.tenants
        ] == [
            (t.network, t.clusters, t.rate_qps) for t in system.tenants
        ]


# ---------------------------------------------------------------------------
# Power / energy scope labels (satellite: per-node vs system labelling)
# ---------------------------------------------------------------------------
class TestScopeLabels:
    def test_power_describe_scopes(self, node, googlenet_result):
        power = googlenet_result.average_power
        assert power.describe().startswith("per-node average power")
        assert power.describe(scope="system").startswith(
            "system average power"
        )

    def test_scaled_power(self, googlenet_result):
        power = googlenet_result.average_power
        scaled = power.scaled(4)
        assert scaled.total_w == pytest.approx(4 * power.total_w)
        assert scaled.logic_w == pytest.approx(4 * power.logic_w)

    def test_estimate_system_power(self, node):
        from repro.arch.power import (
            estimate_node_power,
            estimate_system_power,
        )

        system = make_system(node, 4)
        assert estimate_system_power(system) == pytest.approx(
            4 * estimate_node_power(node)
        )

    def test_system_energy_report_scope(self, node, googlenet_result):
        from repro.sim.energy import energy_report, system_energy_report

        res = simulate_system(
            zoo.googlenet(), make_system(node, 4),
            node_result=googlenet_result,
        )
        node_energy = energy_report(googlenet_result)
        sys_energy = system_energy_report(res)
        assert "[per-node]" in node_energy.describe()
        assert "[system/4 nodes]" in sys_energy.describe()
        # 4x the power at <4x the throughput: each image costs more
        # joules at scale (the sync tax shows up in energy too).
        assert sys_energy.joules_per_training_image > (
            node_energy.joules_per_training_image
        )
