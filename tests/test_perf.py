"""Tests for the analytical performance simulator (Figs 16/17/20/21)."""

import pytest

from repro.arch import half_precision_node, single_precision_node
from repro.dnn import zoo
from repro.errors import SimulationError
from repro.sim.perf import simulate, simulate_suite


@pytest.fixture(scope="module")
def sp():
    return single_precision_node()


@pytest.fixture(scope="module")
def hp():
    return half_precision_node()


@pytest.fixture(scope="module")
def results(sp):
    nets = {n: zoo.load(n) for n in ("AlexNet", "GoogLeNet", "VGG-A",
                                     "VGG-E", "OF-Fast")}
    return simulate_suite(nets, sp)


class TestThroughput:
    def test_thousands_of_images_per_second(self, results):
        """Fig 16: training throughput is in the thousands of images/s."""
        for r in results.values():
            assert r.training_images_per_s > 1_000
            assert r.training_images_per_s < 300_000

    def test_evaluation_roughly_3x_training(self, results):
        """Fig 16: evaluation exceeds training 'by a factor marginally
        over 3x' (BP/WG tiles join FP; no minibatch overheads)."""
        for name, r in results.items():
            ratio = r.evaluation_images_per_s / r.training_images_per_s
            assert 2.0 < ratio < 4.2, (name, ratio)

    def test_bigger_networks_are_slower(self, results):
        assert (
            results["AlexNet"].training_images_per_s
            > results["VGG-A"].training_images_per_s
            > results["VGG-E"].training_images_per_s
        )

    def test_larger_minibatch_amortizes_drain(self, sp):
        net = zoo.alexnet()
        small = simulate(net, sp, minibatch=32)
        large = simulate(net, sp, minibatch=1024)
        assert large.training_images_per_s > small.training_images_per_s

    def test_bad_minibatch(self, sp):
        with pytest.raises(SimulationError):
            simulate(zoo.alexnet(), sp, minibatch=0)


class TestHalfPrecision:
    def test_hp_speedup_band(self, sp, hp):
        """Fig 17: HP trains ~1.85x faster than SP (geomean over suite
        members; individual networks vary with re-mapping)."""
        product, n = 1.0, 0
        for name in ("AlexNet", "ZF", "VGG-A", "OF-Fast", "ResNet18"):
            net = zoo.load(name)
            s = simulate(net, sp).training_images_per_s
            h = simulate(net, hp).training_images_per_s
            product *= h / s
            n += 1
        geomean = product ** (1 / n)
        assert 1.4 < geomean < 2.6

    def test_hp_peak_utilisation_comparable(self, hp):
        r = simulate(zoo.alexnet(), hp)
        assert 0.05 < r.pe_utilization <= 1.0


class TestUtilization:
    def test_band_around_paper_mean(self, results):
        """Fig 16: average 2D-PE utilization ~0.35."""
        utils = [r.pe_utilization for r in results.values()]
        mean = sum(utils) / len(utils)
        assert 0.2 < mean < 0.55
        for u in utils:
            assert 0.05 < u <= 1.0


class TestLinks:
    def test_all_utilizations_bounded(self, results):
        for r in results.values():
            for name, value in r.link_utilization.as_dict().items():
                assert 0.0 <= value <= 1.0, (r.network, name, value)

    def test_comp_mem_busier_than_mem_mem(self, results):
        """Fig 21: Comp-Mem links are the best utilized on-chip links."""
        for r in results.values():
            assert (
                r.link_utilization.comp_mem >= r.link_utilization.mem_mem
            )

    def test_ring_stands_out_for_multi_cluster_nets(self, results):
        """Fig 21: ring utilization is small except for networks spread
        across chip clusters (VGG-D/E)."""
        vgg = results["VGG-E"]
        assert vgg.mapping.clusters_per_copy > 1
        single_cluster = [
            r for r in results.values() if r.mapping.clusters_per_copy == 1
        ]
        assert single_cluster  # sanity
        for r in single_cluster:
            assert r.link_utilization.ring < 0.5

    def test_arcs_idle_for_single_chip_nets(self, results):
        alex = results["AlexNet"]
        assert alex.mapping.conv_chips_per_copy == 1
        assert alex.link_utilization.arc < 0.1


class TestPowerEfficiency:
    def test_average_power_below_peak(self, results):
        """Fig 20: normalised average power is well below 1."""
        for r in results.values():
            assert r.average_power.total_w < 1400.0
            assert r.average_power.total_w > 200.0

    def test_efficiency_band(self, results):
        """Fig 20: ~331.7 GFLOPs/W on average."""
        effs = [r.gflops_per_watt for r in results.values()]
        mean = sum(effs) / len(effs)
        assert 200 < mean < 500

    def test_achieved_below_peak(self, results, sp):
        for r in results.values():
            assert r.achieved_tflops * 1e12 < sp.peak_flops


class TestReporting:
    def test_describe(self, results):
        text = results["AlexNet"].describe()
        assert "AlexNet" in text
        assert "img/s" in text

    def test_bottleneck_is_a_stage(self, results):
        r = results["VGG-A"]
        assert r.bottleneck in r.stages
        assert r.bottleneck.cycles == max(s.cycles for s in r.stages)


class TestUtilizationReport:
    def test_fig19_cascade(self, sp):
        from repro.compiler import map_network
        from repro.sim.perf import utilization_report

        mapping = map_network(zoo.alexnet(), sp)
        report = utilization_report(mapping)
        assert {r.unit for r in report} == {
            "conv1", "conv2", "conv3", "conv4", "conv5"
        }
        for row in report:
            # Each multiplicative factor stays in (0, 1]; the column
            # peak-util ratio may exceed 1 (over-provisioned layers).
            assert 0 < row.feature_distribution <= 1
            assert 0 < row.array_residue <= 1
            assert 0 < row.achieved <= row.array_residue
            assert row.column_peak_util > 0
        # Allocated PEs sum to the ideal total by construction.
        total_pes = sum(r.pes for r in report)
        total_ideal = sum(r.ideal_pes for r in report)
        assert total_ideal == pytest.approx(total_pes, rel=1e-6)

    def test_empty_for_fc_only_network(self, sp):
        from repro.compiler import map_network
        from repro.sim.perf import utilization_report

        mapping = map_network(zoo.tiny_mlp(), sp)
        assert utilization_report(mapping) == []
