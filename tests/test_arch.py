"""Tests for chip / cluster / node composition against Fig 14."""

import pytest

from repro.arch import (
    ChipKind,
    ClusterConfig,
    FREQUENCY_HZ,
    LinkBandwidths,
    PAPER_EFFICIENCY,
    PAPER_PEAK_FLOPS,
    PAPER_POWER_TABLE,
    PAPER_TILE_COUNTS,
    chip_cluster,
    conv_chip,
    fc_chip,
    half_precision_node,
    processing_efficiency,
    single_precision_node,
)
from repro.errors import ConfigError

#: Fig 14 numbers are rounded in the paper; 2% covers the rounding.
REL = 0.02


@pytest.fixture(scope="module")
def sp():
    return single_precision_node()


@pytest.fixture(scope="module")
def hp():
    return half_precision_node()


class TestChip:
    def test_conv_chip_tile_counts(self):
        chip = conv_chip()
        assert chip.comp_tile_count == PAPER_TILE_COUNTS["conv_chip_comp"]
        assert chip.mem_tile_count == PAPER_TILE_COUNTS["conv_chip_mem"]

    def test_fc_chip_tile_counts(self):
        chip = fc_chip()
        assert chip.comp_tile_count == PAPER_TILE_COUNTS["fc_chip_comp"]
        assert chip.mem_tile_count == PAPER_TILE_COUNTS["fc_chip_mem"]

    @pytest.mark.parametrize(
        "factory,key",
        [(conv_chip, "conv_chip"), (fc_chip, "fc_chip")],
    )
    def test_chip_peak_flops(self, factory, key):
        chip = factory()
        assert chip.peak_flops(FREQUENCY_HZ) == pytest.approx(
            PAPER_PEAK_FLOPS[key], rel=REL
        )

    def test_per_column_resources(self):
        chip = conv_chip()
        assert chip.comp_tiles_per_column == 18  # 3 per group x 6 rows
        assert chip.mem_tiles_per_column == 6
        assert chip.mem_capacity_per_column == 6 * 512 * 1024

    def test_resized(self):
        chip = conv_chip().resized(8, 24)
        assert chip.comp_tile_count == 3 * 8 * 24

    def test_grid_validation(self):
        with pytest.raises(ConfigError):
            conv_chip().resized(0, 4)

    def test_link_totals(self):
        links = conv_chip().links
        assert links.external_memory_total == links.external_memory * 10
        halved = links.halved()
        assert halved.comp_mem == links.comp_mem / 2
        assert halved.ext_channels == links.ext_channels


class TestCluster:
    def test_cluster_peak(self, sp):
        assert sp.cluster.peak_flops(FREQUENCY_HZ) == pytest.approx(
            PAPER_PEAK_FLOPS["cluster"], rel=REL
        )

    def test_chip_kind_enforced(self):
        with pytest.raises(ConfigError):
            ClusterConfig(
                conv_chip=fc_chip(),
                fc_chip=fc_chip(),
                conv_chip_count=4,
                spoke_bandwidth=1e9,
                arc_bandwidth=1e9,
            )

    def test_fc_batch_size(self, sp):
        cluster = sp.cluster
        assert cluster.fc_batch_size(1) == 4
        assert cluster.fc_batch_size(2) == 2
        assert cluster.fc_batch_size(4) == 1
        with pytest.raises(ConfigError):
            cluster.fc_batch_size(0)


class TestNode:
    def test_tile_counts_7032(self, sp):
        """The abstract's headline: 7032 processing tiles."""
        assert sp.tile_count == PAPER_TILE_COUNTS["node_total"]
        assert sp.comp_tile_count == PAPER_TILE_COUNTS["node_comp"]
        assert sp.mem_tile_count == PAPER_TILE_COUNTS["node_mem"]

    def test_sp_peak_680T(self, sp):
        assert sp.peak_flops == pytest.approx(
            PAPER_PEAK_FLOPS["node"], rel=REL
        )

    def test_hp_peak_135P(self, hp):
        """Sec 6.1: ~1.35 PFLOP/s at half precision."""
        assert hp.peak_flops == pytest.approx(1.35e15, rel=REL)

    def test_hp_grid_growth(self, hp):
        assert hp.cluster.conv_chip.rows == 8
        assert hp.cluster.conv_chip.cols == 24
        assert hp.cluster.fc_chip.cols == 12

    def test_hp_memory_halved(self, sp, hp):
        assert (
            hp.cluster.conv_chip.mem_tile.capacity_bytes
            == sp.cluster.conv_chip.mem_tile.capacity_bytes // 2
        )
        assert (
            hp.cluster.conv_chip.links.comp_mem
            == sp.cluster.conv_chip.links.comp_mem / 2
        )

    def test_describe(self, sp):
        text = sp.describe()
        assert "7032 tiles" in text
        assert "600 MHz" in text

    def test_total_conv_columns(self, sp):
        assert sp.total_conv_columns == 256  # 16 chips x 16 columns

    def test_validation(self, sp):
        from dataclasses import replace

        with pytest.raises(ConfigError):
            replace(sp, cluster_count=0)
        with pytest.raises(ConfigError):
            replace(sp, dtype_bytes=8)
        with pytest.raises(ConfigError):
            replace(sp, fc_temporal_batch=0)


class TestEfficiencyTargets:
    @pytest.mark.parametrize("key", list(PAPER_EFFICIENCY))
    def test_fig14_efficiency_column(self, key):
        """peak FLOPs / peak W reproduces the Fig 14 efficiency column."""
        eff = processing_efficiency(
            PAPER_PEAK_FLOPS[key], PAPER_POWER_TABLE[key].peak_w
        )
        assert eff == pytest.approx(PAPER_EFFICIENCY[key], rel=0.03)
