"""Synchronization is load-bearing: hazards without MEMTRACK.

ScaleDeep has no caches, coherence or locks; MEMTRACK trackers are the
*only* thing ordering producers and consumers (Sec 3.2.4).  These tests
demonstrate the hazard directly: stripping the trackers from otherwise
correct compiled programs corrupts the computation under the very
scheduling that works with them armed, and a differential scalar-ISA
interpreter confirms the engine's control-flow semantics.
"""

import numpy as np
import pytest

from repro.compiler.codegen import compile_forward
from repro.dnn.zoo import tiny_cnn
from repro.functional import ReferenceModel
from repro.isa.instructions import Instruction, Opcode, make
from repro.isa.program import Program
from repro.isa.assembler import assemble
from repro.arch.presets import conv_chip
from repro.sim.engine import Engine
from repro.sim.machine import Machine

from hypothesis import given, settings, strategies as st


def _strip_trackers(program: Program) -> None:
    program.instructions = [
        make(Opcode.LDRI, rd=0, value=0, comment="tracker stripped")
        if instr.opcode in (Opcode.MEMTRACK, Opcode.DMA_MEMTRACK)
        else instr
        for instr in program.instructions
    ]


class TestTrackerHazard:
    def test_stripping_trackers_corrupts_the_computation(self):
        """The same programs, same schedule, same data — minus the
        data-flow trackers — race and produce garbage."""
        net = tiny_cnn(num_classes=4, in_size=8)
        model = ReferenceModel(net, seed=0)
        image = np.random.default_rng(1).normal(
            0, 1, (3, 8, 8)
        ).astype(np.float32)
        want = model.forward(image)

        good = compile_forward(net, model, rows=2)
        synced, _ = good.run(image)
        np.testing.assert_allclose(synced, want, atol=1e-4)

        bad = compile_forward(net, model, rows=2)
        for program in bad.programs:
            _strip_trackers(program)
        raced, _ = bad.run(image)
        assert np.abs(raced - want).max() > 1e-3

    def test_tracker_blocking_is_what_orders_execution(self):
        """With trackers armed, blocked-read retries are observed — the
        consumers really did arrive early and were held back."""
        net = tiny_cnn(num_classes=4, in_size=8)
        model = ReferenceModel(net, seed=0)
        compiled = compile_forward(net, model, rows=2)
        image = np.random.default_rng(2).normal(
            0, 1, (3, 8, 8)
        ).astype(np.float32)
        _, report = compiled.run(image)
        assert report.blocked_reads > 0


class _MiniInterpreter:
    """An independent model of the scalar ISA for differential testing."""

    def __init__(self, program):
        self.program = program
        self.regs = [0] * 64

    def run(self, max_steps=10_000):
        pc = 0
        steps = 0
        while steps < max_steps:
            steps += 1
            instr = self.program[pc]
            op = instr.opcode
            o = instr.named_operands()
            pc += 1
            if op is Opcode.LDRI:
                self.regs[o["rd"]] = o["value"]
            elif op is Opcode.MOVR:
                self.regs[o["rd"]] = self.regs[o["rs"]]
            elif op is Opcode.ADDR:
                self.regs[o["rd"]] = self.regs[o["rs1"]] + self.regs[o["rs2"]]
            elif op is Opcode.ADDRI:
                self.regs[o["rd"]] = self.regs[o["rs"]] + o["value"]
            elif op is Opcode.SUBR:
                self.regs[o["rd"]] = self.regs[o["rs1"]] - self.regs[o["rs2"]]
            elif op is Opcode.SUBRI:
                self.regs[o["rd"]] = self.regs[o["rs"]] - o["value"]
            elif op is Opcode.MULR:
                self.regs[o["rd"]] = self.regs[o["rs1"]] * self.regs[o["rs2"]]
            elif op is Opcode.BEQZ:
                if self.regs[o["rs"]] == 0:
                    pc += o["offset"]
            elif op is Opcode.BNEZ:
                if self.regs[o["rs"]] != 0:
                    pc += o["offset"]
            elif op is Opcode.BGTZ:
                if self.regs[o["rs"]] > 0:
                    pc += o["offset"]
            elif op is Opcode.BRANCH:
                pc += o["offset"]
            elif op is Opcode.HALT:
                return self.regs
            else:
                raise AssertionError(f"scalar-only interpreter: {op}")
        raise AssertionError("mini interpreter did not halt")


@st.composite
def scalar_program(draw):
    """A random straight-line scalar program (registers r1-r7)."""
    lines = ["LDRI rd=1, value=1"]
    for _ in range(draw(st.integers(3, 15))):
        op = draw(st.sampled_from(["LDRI", "ADDR", "ADDRI", "SUBR",
                                   "SUBRI", "MULR", "MOVR"]))
        rd = draw(st.integers(1, 7))
        rs1 = draw(st.integers(1, 7))
        rs2 = draw(st.integers(1, 7))
        value = draw(st.integers(-20, 20))
        if op == "LDRI":
            lines.append(f"LDRI rd={rd}, value={value}")
        elif op == "MOVR":
            lines.append(f"MOVR rd={rd}, rs={rs1}")
        elif op in ("ADDR", "SUBR", "MULR"):
            lines.append(f"{op} rd={rd}, rs1={rs1}, rs2={rs2}")
        else:
            lines.append(f"{op} rd={rd}, rs={rs1}, value={value}")
    lines.append("HALT")
    return "\n".join(lines)


class TestScalarDifferential:
    @settings(max_examples=60, deadline=None)
    @given(source=scalar_program())
    def test_engine_matches_mini_interpreter(self, source):
        program = assemble(source, tile="diff")
        expected = _MiniInterpreter(program).run()

        machine = Machine(conv_chip(), 2, 1)
        machine.load_program(program)
        Engine(machine).run()
        got = machine.comp_tiles["diff"].registers
        assert [int(v) for v in got] == expected

    def test_loop_differential(self):
        source = """
        LDRI rd=1, value=7
        LDRI rd=2, value=0
        loop:
        ADDR rd=2, rs1=2, rs2=1
        SUBRI rd=1, rs=1, value=1
        BGTZ rs=1, offset=@loop
        HALT
        """
        program = assemble(source, tile="loop")
        expected = _MiniInterpreter(program).run()
        machine = Machine(conv_chip(), 2, 1)
        machine.load_program(program)
        Engine(machine).run()
        got = [int(v) for v in machine.comp_tiles["loop"].registers]
        assert got == expected
        assert got[2] == 7 + 6 + 5 + 4 + 3 + 2 + 1
