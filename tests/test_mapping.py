"""Tests for workload mapping (compiler STEP1-6)."""

import pytest

from repro.arch import single_precision_node
from repro.compiler.mapping import (
    WorkloadMapping,
    default_group_key,
    map_network,
)
from repro.dnn import zoo
from repro.dnn.layers import LayerKind
from repro.errors import MappingError


@pytest.fixture(scope="module")
def node():
    return single_precision_node()


@pytest.fixture(scope="module")
def alexnet_map(node):
    return map_network(zoo.alexnet(), node)


@pytest.fixture(scope="module")
def googlenet_map(node):
    return map_network(zoo.googlenet(), node)


class TestStep1Separation:
    def test_conv_and_fc_sides(self, alexnet_map):
        assert set(alexnet_map.conv_allocations) == {
            "conv1", "conv2", "conv3", "conv4", "conv5"
        }
        assert set(alexnet_map.fc_allocations) == {"fc6", "fc7", "fc8"}

    def test_samp_attached_to_preceding_conv(self, alexnet_map):
        """Fig 19 groups C1/S1: the pool layer lives with its producer."""
        assert "pool1" in alexnet_map.conv_allocations["conv1"].attached
        assert "pool2" in alexnet_map.conv_allocations["conv2"].attached
        assert "pool3" in alexnet_map.conv_allocations["conv5"].attached

    def test_input_attached_to_first_conv(self, alexnet_map):
        assert "input" in alexnet_map.conv_allocations["conv1"].attached

    def test_inception_modules_merge(self, googlenet_map):
        """GoogLeNet's branches map as one unit per module (the paper
        counts them as single CONV layers)."""
        assert "inc3a" in googlenet_map.conv_allocations
        members = googlenet_map.conv_allocations["inc3a"].members
        assert len(members) == 6  # 1x1, 3x3r, 3x3, 5x5r, 5x5, poolproj

    def test_resnet_blocks_stay_separate(self, node):
        mapping = map_network(zoo.resnet18(), node)
        assert "s1b0_conv1" in mapping.conv_allocations
        assert "s1b0_conv2" in mapping.conv_allocations


class TestStep3Columns:
    @pytest.mark.parametrize("name", list(zoo.BENCHMARKS))
    def test_columns_at_least_minimum(self, node, name):
        mapping = map_network(zoo.load(name), node)
        for alloc in mapping.conv_allocations.values():
            assert alloc.columns >= alloc.min_columns

    @pytest.mark.parametrize("name", list(zoo.BENCHMARKS))
    def test_columns_fit_budget(self, node, name):
        mapping = map_network(zoo.load(name), node)
        budget = mapping.conv_chips_per_copy * node.cluster.conv_chip.cols
        assert mapping.conv_columns_per_copy <= budget

    def test_alexnet_fills_one_chip(self, alexnet_map):
        """Paper Fig 16: AlexNet maps to 16 columns (one chip)."""
        assert alexnet_map.conv_chips_per_copy == 1
        assert alexnet_map.conv_columns_per_copy == 16
        assert alexnet_map.copies == 16

    def test_vgg_d_spans_clusters(self, node):
        """Paper: VGG-D/E are spatially mapped across chip clusters."""
        mapping = map_network(zoo.vgg_d(), node)
        assert mapping.clusters_per_copy > 1
        assert mapping.copies < node.cluster_count

    def test_copies_times_footprint_fits_node(self, node):
        for name in ("AlexNet", "VGG-A", "VGG-D"):
            m = map_network(zoo.load(name), node)
            assert (
                m.copies * m.conv_chips_per_copy <= m.node.conv_chip_count
            )

    def test_fc_columns_fit_chip(self, alexnet_map, node):
        assert alexnet_map.fc_columns <= node.cluster.fc_chip.cols


class TestStep6Weights:
    def test_small_conv_weights_on_chip(self, alexnet_map, node):
        """conv1's 35K weights easily fit its columns' scratchpads."""
        assert alexnet_map.conv_allocations["conv1"].weights_on_chip

    def test_fc_weights_off_chip(self, alexnet_map):
        """AlexNet fc6's 37.7M weights cannot live on the FcLayer hub."""
        assert not alexnet_map.fc_allocations["fc6"].weights_on_chip

    def test_weight_placement_respects_capacity(self, node):
        net = zoo.vgg_a()
        mapping = map_network(net, node)
        chip = node.cluster.conv_chip
        for alloc in mapping.conv_allocations.values():
            weights = sum(net[m].weights for m in alloc.members) * 4
            if alloc.weights_on_chip:
                capacity = alloc.columns * chip.mem_capacity_per_column
                assert 2 * weights <= capacity


class TestFcBatching:
    def test_full_wheel_batch(self, alexnet_map):
        """One copy per chip: 4 spokes x 4 clusters (model parallel)
        x temporal aggregation."""
        node = alexnet_map.node
        assert alexnet_map.fc_batch_size == (
            4 * 4 * node.fc_temporal_batch
        )

    def test_spread_copy_reduces_batch(self, node):
        mapping = map_network(zoo.vgg_d(), node)
        alex = map_network(zoo.alexnet(), node)
        assert mapping.fc_batch_size < alex.fc_batch_size


class TestApi:
    def test_allocation_for_member_and_attached(self, alexnet_map):
        assert alexnet_map.allocation_for("conv2").unit == "conv2"
        assert alexnet_map.allocation_for("pool1").unit == "conv1"
        assert alexnet_map.allocation_for("fc7").unit == "fc7"

    def test_allocation_for_unknown(self, alexnet_map):
        with pytest.raises(MappingError):
            alexnet_map.allocation_for("missing")

    def test_describe(self, alexnet_map):
        text = alexnet_map.describe()
        assert "AlexNet" in text
        assert "conv1" in text and "fc8" in text

    def test_group_key(self):
        assert default_group_key("inc4a_3x3") == "inc4a"
        assert default_group_key("conv3") == "conv3"

    def test_mlp_maps_to_fc_only(self, node):
        mapping = map_network(zoo.tiny_mlp(), node)
        assert not mapping.conv_allocations
        assert len(mapping.fc_allocations) == 2
