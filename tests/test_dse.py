"""Tests for design-space exploration and the power estimator."""

import pytest

from repro.arch import single_precision_node
from repro.arch.dse import (
    DesignPoint,
    DseResult,
    default_grid,
    evaluate_point,
    pareto_front,
    sweep,
)
from repro.arch.power import estimate_node_power
from repro.dnn import zoo
from repro.errors import ConfigError
from repro.sim.engine import Engine
from repro.sim.machine import Machine


class TestPowerEstimator:
    def test_reproduces_published_envelope(self):
        """Composing per-tile powers with the uncore shares recovers the
        Fig 14 node power for the published design."""
        power = estimate_node_power(single_precision_node())
        assert power == pytest.approx(1400.0, rel=0.02)

    def test_scales_with_resources(self):
        base = single_precision_node()
        small = DesignPoint(4, 12, 4, 512).apply(base)
        big = DesignPoint(8, 20, 4, 512).apply(base)
        assert estimate_node_power(small) < estimate_node_power(base)
        assert estimate_node_power(big) > estimate_node_power(base)


class TestDesignPoints:
    def test_apply_resizes_chip(self):
        node = DesignPoint(4, 12, 8, 256).apply(single_precision_node())
        chip = node.cluster.conv_chip
        assert (chip.rows, chip.cols) == (4, 12)
        assert chip.comp_tile.lanes == 8
        assert chip.mem_tile.capacity_bytes == 256 * 1024

    def test_invalid_point_rejected(self):
        with pytest.raises(ConfigError):
            DesignPoint(0, 12, 4, 512).apply(single_precision_node())

    def test_default_grid_size(self):
        grid = default_grid()
        assert len(grid) == 3 * 3 * 3
        assert DesignPoint(6, 16, 4, 512) in grid  # the published point

    def test_label(self):
        assert DesignPoint(6, 16, 4, 512).label == "6x16 l4 m512K"


class TestSweep:
    @pytest.fixture(scope="class")
    def results(self):
        workloads = {"GoogLeNet": zoo.load("GoogLeNet")}
        points = default_grid(rows=(4, 6), cols=(12, 16), lanes=(4,),
                              mem_kb=(512,))
        return sweep(workloads, points)

    def test_every_point_evaluated(self, results):
        assert len(results) == 4
        for r in results:
            assert r.peak_tflops > 0
            assert r.estimated_power_w > 0
            assert r.geomean_throughput > 0
            assert 0 < r.mean_utilization <= 1

    def test_peak_flops_grow_with_grid(self, results):
        by_label = {r.point.label: r for r in results}
        assert (
            by_label["6x16 l4 m512K"].peak_tflops
            > by_label["4x12 l4 m512K"].peak_tflops
        )

    def test_pareto_front_is_nondominated(self, results):
        front = pareto_front(results)
        assert front
        for candidate in front:
            for other in results:
                dominates = (
                    other.geomean_throughput > candidate.geomean_throughput
                    and other.estimated_power_w < candidate.estimated_power_w
                )
                assert not dominates

    def test_pareto_sorted_by_power(self, results):
        front = pareto_front(results)
        powers = [r.estimated_power_w for r in front]
        assert powers == sorted(powers)

    def test_throughput_per_watt(self, results):
        for r in results:
            assert r.throughput_per_watt == pytest.approx(
                r.geomean_throughput / r.estimated_power_w
            )


class TestEngineTrace:
    def test_trace_records_execution_order(self):
        from repro.arch.presets import conv_chip
        from repro.isa import assemble

        machine = Machine(conv_chip(), 2, 1)
        machine.load_program(assemble(
            "LDRI rd=1, value=2\nADDRI rd=1, rs=1, value=3\nHALT",
            tile="t0",
        ))
        engine = Engine(machine, trace=True)
        engine.run()
        ops = [entry[2].split(" ")[0] for entry in engine.trace]
        assert ops == ["LDRI", "ADDRI", "HALT"]
        rounds = [entry[0] for entry in engine.trace]
        assert rounds == sorted(rounds)

    def test_trace_disabled_by_default(self):
        from repro.arch.presets import conv_chip
        from repro.isa import assemble

        machine = Machine(conv_chip(), 2, 1)
        machine.load_program(assemble("HALT", tile="t0"))
        engine = Engine(machine)
        engine.run()
        assert engine.trace == []

    def test_trace_limit(self):
        from repro.arch.presets import conv_chip
        from repro.isa import assemble

        machine = Machine(conv_chip(), 2, 1)
        source = "\n".join("LDRI rd=1, value=0" for _ in range(20)) + "\nHALT"
        machine.load_program(assemble(source, tile="t0"))
        engine = Engine(machine, trace=True, trace_limit=5)
        engine.run()
        assert len(engine.trace) == 5
