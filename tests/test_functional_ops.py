"""Tests for the numpy kernels, including numeric-gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dnn.layers import Activation, PoolMode
from repro.errors import ShapeError
from repro.functional import tensor_ops as ops


def brute_conv(x, w, b, stride, pad, groups=1):
    """O(n^4) reference convolution for cross-checking im2col."""
    out_c, in_cg, k, _ = w.shape
    in_c = x.shape[0]
    xp = np.pad(x, ((0, 0), (pad, pad), (pad, pad)))
    h, wdt = xp.shape[1:]
    out_h = (h - k) // stride + 1
    out_w = (wdt - k) // stride + 1
    out = np.zeros((out_c, out_h, out_w), dtype=np.float64)
    out_per_group = out_c // groups
    for f in range(out_c):
        g = f // out_per_group
        for i in range(out_h):
            for j in range(out_w):
                patch = xp[
                    g * in_cg : (g + 1) * in_cg,
                    i * stride : i * stride + k,
                    j * stride : j * stride + k,
                ]
                out[f, i, j] = (patch * w[f]).sum() + b[f]
    return out


class TestConvForward:
    @pytest.mark.parametrize(
        "in_c,out_c,size,k,stride,pad,groups",
        [
            (3, 4, 8, 3, 1, 1, 1),
            (2, 6, 9, 3, 2, 0, 1),
            (4, 4, 7, 5, 1, 2, 2),
            (1, 1, 5, 5, 1, 0, 1),
        ],
    )
    def test_matches_brute_force(self, in_c, out_c, size, k, stride, pad,
                                 groups):
        rng = np.random.default_rng(7)
        x = rng.normal(0, 1, (in_c, size, size)).astype(np.float32)
        w = rng.normal(0, 1, (out_c, in_c // groups, k, k)).astype(np.float32)
        b = rng.normal(0, 1, out_c).astype(np.float32)
        got = ops.conv2d_forward(x, w, b, stride, pad, groups)
        want = brute_conv(x, w, b, stride, pad, groups)
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_group_mismatch(self):
        x = np.zeros((3, 4, 4), np.float32)
        w = np.zeros((4, 2, 3, 3), np.float32)
        with pytest.raises(ShapeError):
            ops.conv2d_forward(x, w, np.zeros(4, np.float32), groups=2)

    def test_requires_3d(self):
        with pytest.raises(ShapeError):
            ops.conv2d_forward(
                np.zeros((4, 4), np.float32),
                np.zeros((1, 1, 3, 3), np.float32),
                np.zeros(1, np.float32),
            )


class TestConvBackward:
    def test_numeric_gradients(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, (2, 6, 6)).astype(np.float64)
        w = rng.normal(0, 1, (3, 2, 3, 3)).astype(np.float64)
        b = np.zeros(3)
        grad_out = rng.normal(0, 1, (3, 6, 6)).astype(np.float64)

        gx, gw, gb = ops.conv2d_backward(x, w, grad_out, 1, 1)
        eps = 1e-6

        def loss(xv, wv):
            return (ops.conv2d_forward(xv, wv, b, 1, 1) * grad_out).sum()

        for idx in [(0, 2, 3), (1, 5, 5)]:
            xp = x.copy(); xp[idx] += eps
            xm = x.copy(); xm[idx] -= eps
            num = (loss(xp, w) - loss(xm, w)) / (2 * eps)
            assert num == pytest.approx(gx[idx], rel=1e-4, abs=1e-6)
        for idx in [(0, 0, 1, 1), (2, 1, 0, 2)]:
            wp = w.copy(); wp[idx] += eps
            wm = w.copy(); wm[idx] -= eps
            num = (loss(x, wp) - loss(x, wm)) / (2 * eps)
            assert num == pytest.approx(gw[idx], rel=1e-4, abs=1e-6)
        np.testing.assert_allclose(gb, grad_out.sum(axis=(1, 2)))

    def test_grouped_gradients_shapes(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0, 1, (4, 5, 5))
        w = rng.normal(0, 1, (6, 2, 3, 3))
        grad = rng.normal(0, 1, (6, 5, 5))
        gx, gw, gb = ops.conv2d_backward(x, w, grad, 1, 1, groups=2)
        assert gx.shape == x.shape
        assert gw.shape == w.shape
        assert gb.shape == (6,)


class TestIm2Col:
    @settings(max_examples=50, deadline=None)
    @given(
        c=st.integers(1, 4),
        size=st.integers(3, 10),
        k=st.integers(1, 3),
        stride=st.integers(1, 2),
        pad=st.integers(0, 2),
    )
    def test_col2im_is_adjoint(self, c, size, k, stride, pad):
        """<im2col(x), y> == <x, col2im(y)> — the defining property the
        conv backward pass relies on."""
        if size + 2 * pad < k:
            return
        rng = np.random.default_rng(42)
        x = rng.normal(0, 1, (c, size, size))
        cols, out_h, out_w = ops.im2col(x, k, stride, pad)
        y = rng.normal(0, 1, cols.shape)
        lhs = (cols * y).sum()
        rhs = (x * ops.col2im(y, x.shape, k, stride, pad)).sum()
        assert lhs == pytest.approx(rhs, rel=1e-9)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        out, arg = ops.pool_forward(x, 2, 2, 0, PoolMode.MAX)
        np.testing.assert_allclose(out[0], [[5, 7], [13, 15]])
        assert arg.shape == (1, 2, 2)

    def test_avg_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        out, arg = ops.pool_forward(x, 2, 2, 0, PoolMode.AVG)
        np.testing.assert_allclose(out[0], [[2.5, 4.5], [10.5, 12.5]])
        assert arg.size == 0

    def test_max_pool_backward_routes_to_argmax(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        out, arg = ops.pool_forward(x, 2, 2, 0, PoolMode.MAX)
        grad = np.ones_like(out)
        gx = ops.pool_backward(grad, x.shape, 2, 2, 0, PoolMode.MAX, arg)
        assert gx.sum() == 4
        assert gx[0, 1, 1] == 1  # element 5 was a max
        assert gx[0, 0, 0] == 0

    def test_avg_pool_backward_spreads(self):
        grad = np.ones((1, 2, 2))
        gx = ops.pool_backward(
            grad, (1, 4, 4), 2, 2, 0, PoolMode.AVG, np.empty(0)
        )
        np.testing.assert_allclose(gx, np.full((1, 4, 4), 0.25))

    def test_overlapping_max_pool_gradient_numeric(self):
        rng = np.random.default_rng(3)
        x = rng.normal(0, 1, (2, 5, 5))
        out, arg = ops.pool_forward(x, 3, 2, 0, PoolMode.MAX)
        grad = rng.normal(0, 1, out.shape)
        gx = ops.pool_backward(grad, x.shape, 3, 2, 0, PoolMode.MAX, arg)
        eps = 1e-6
        idx = (1, 2, 2)
        xp = x.copy(); xp[idx] += eps
        xm = x.copy(); xm[idx] -= eps
        lp = (ops.pool_forward(xp, 3, 2, 0, PoolMode.MAX)[0] * grad).sum()
        lm = (ops.pool_forward(xm, 3, 2, 0, PoolMode.MAX)[0] * grad).sum()
        assert (lp - lm) / (2 * eps) == pytest.approx(gx[idx], abs=1e-5)

    def test_global_pool_roundtrip(self):
        x = np.arange(8, dtype=np.float32).reshape(2, 2, 2)
        out = ops.global_pool_forward(x)
        np.testing.assert_allclose(out.reshape(-1), [1.5, 5.5])
        gx = ops.global_pool_backward(np.ones((2, 1, 1)), x.shape)
        np.testing.assert_allclose(gx, np.full(x.shape, 0.25))


class TestFC:
    def test_forward(self):
        x = np.array([1.0, 2.0], np.float32).reshape(2, 1, 1)
        w = np.array([[1.0, 0.0], [0.0, 3.0], [1.0, 1.0]], np.float32)
        b = np.array([0.0, 1.0, 0.0], np.float32)
        out = ops.fc_forward(x, w, b)
        np.testing.assert_allclose(out, [1.0, 7.0, 3.0])

    def test_backward_is_outer_product(self):
        rng = np.random.default_rng(4)
        x = rng.normal(0, 1, (3, 2, 2))
        w = rng.normal(0, 1, (5, 12))
        g = rng.normal(0, 1, 5)
        gx, gw, gb = ops.fc_backward(x, w, g)
        np.testing.assert_allclose(gw, np.outer(g, x.reshape(-1)))
        np.testing.assert_allclose(gx.reshape(-1), w.T @ g)
        np.testing.assert_allclose(gb, g)


class TestActivations:
    @pytest.mark.parametrize(
        "fn", [Activation.RELU, Activation.TANH, Activation.SIGMOID]
    )
    def test_derivative_numeric(self, fn):
        rng = np.random.default_rng(5)
        x = rng.normal(0, 1, 32)
        x = x[np.abs(x) > 1e-3]  # avoid ReLU kink
        eps = 1e-6
        act = ops.activate(x, fn)
        grad = ops.activate_backward(np.ones_like(x), act, fn)
        num = (ops.activate(x + eps, fn) - ops.activate(x - eps, fn)) / (
            2 * eps
        )
        np.testing.assert_allclose(grad, num, atol=1e-5)

    def test_softmax_sums_to_one(self):
        out = ops.activate(np.array([1.0, 2.0, 3.0]), Activation.SOFTMAX)
        assert out.sum() == pytest.approx(1.0)
        assert out.argmax() == 2

    def test_softmax_stable_for_large_logits(self):
        out = ops.activate(np.array([1000.0, 1001.0]), Activation.SOFTMAX)
        assert np.isfinite(out).all()

    def test_none_passthrough(self):
        x = np.array([-1.0, 2.0])
        np.testing.assert_allclose(ops.activate(x, Activation.NONE), x)

    def test_cross_entropy_gradient(self):
        p = ops.activate(np.array([0.1, 0.5, 0.2]), Activation.SOFTMAX)
        loss, grad = ops.softmax_cross_entropy(p, 1)
        assert loss == pytest.approx(-np.log(p[1]))
        np.testing.assert_allclose(grad, p - np.eye(3)[1])
