"""Tests for the metrics layer: streaming histograms, the registry,
telemetry integration, and Chrome-trace counter series.

Covers the tentpole's determinism contract — percentile summaries are
exact for small N, bucket-interpolated beyond the cap, and registries
merge bit-identically regardless of the merge sequence's partitioning.
"""

import json
import pickle

import pytest

from repro.telemetry import (
    HISTOGRAM_EXACT_CAP,
    CounterSample,
    Histogram,
    MetricsRegistry,
    NULL_TELEMETRY,
    Telemetry,
    VOLATILE_GROUP_PREFIX,
    capture,
    chrome_trace,
    percentile_table,
)


class TestHistogram:
    def test_exact_percentiles_small_n(self):
        hist = Histogram()
        for value in (1.0, 2.0, 3.0, 4.0, 100.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.min == 1.0 and hist.max == 100.0
        assert hist.percentile(0) == 1.0
        assert hist.percentile(50) == 3.0
        assert hist.percentile(100) == 100.0
        # Linear interpolation between order statistics.
        assert hist.percentile(75) == pytest.approx(4.0 + 0.0, abs=96)

    def test_empty_histogram_is_safe(self):
        hist = Histogram()
        assert hist.count == 0
        assert hist.percentile(50) == 0.0
        assert hist.summary()["p99"] == 0.0

    def test_switchover_to_buckets_at_cap(self):
        hist = Histogram(exact_cap=8)
        for value in range(1, 9):
            hist.observe(float(value))
        assert hist.exact
        hist.observe(9.0)
        assert not hist.exact  # past the cap: bucketed only
        assert hist.count == 9
        assert hist.max == 9.0

    def test_bucketed_percentiles_approximate_exact(self):
        exact = Histogram(exact_cap=100_000)
        bucketed = Histogram(exact_cap=4)
        values = [float(v) for v in range(1, 1001)]
        for value in values:
            exact.observe(value)
            bucketed.observe(value)
        for q in (50, 90, 95, 99):
            reference = exact.percentile(q)
            # Log buckets at 4/octave: worst-case relative error is one
            # bucket width (2**0.25 ~ 19%) when samples fill the range.
            assert bucketed.percentile(q) == pytest.approx(
                reference, rel=0.20
            )

    def test_bucketed_percentiles_clamped_to_observed_range(self):
        hist = Histogram(exact_cap=2)
        for value in (10.0, 11.0, 12.0, 13.0):
            hist.observe(value)
        assert hist.percentile(0) >= hist.min
        assert hist.percentile(100) <= hist.max

    def test_zero_and_negative_values_bucket_separately(self):
        hist = Histogram(exact_cap=2)
        for value in (0.0, 0.0, 0.0, 8.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.percentile(50) == 0.0
        assert hist.percentile(100) == 8.0

    def test_merge_matches_single_stream(self):
        values = [float(i % 17 + 1) for i in range(300)]
        one = Histogram(exact_cap=16)
        for value in values:
            one.observe(value)
        left, right = Histogram(exact_cap=16), Histogram(exact_cap=16)
        for i, value in enumerate(values):
            (left if i % 2 else right).observe(value)
        left.merge(right)
        assert left.count == one.count
        assert left.total == one.total
        assert left.summary() == one.summary()

    def test_default_cap_is_module_constant(self):
        assert Histogram().exact_cap == HISTOGRAM_EXACT_CAP

    def test_histogram_pickles(self):
        hist = Histogram(exact_cap=2)
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        clone = pickle.loads(pickle.dumps(hist))
        assert clone.summary() == hist.summary()


class TestMetricsRegistry:
    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g", "x", 1.0)
        reg.gauge("g", "x", 5.0)
        assert reg.get_gauge("g", "x") == 5.0

    def test_observe_builds_histograms(self):
        reg = MetricsRegistry()
        reg.observe("h", "lat", 10.0)
        reg.observe("h", "lat", 20.0)
        hist = reg.histogram("h", "lat")
        assert hist.count == 2
        assert reg.histogram("h", "missing") is None

    def test_to_dict_deterministic_and_json_stable(self):
        def build():
            reg = MetricsRegistry()
            reg.gauge("b", "g", 2.0)
            for i in range(50):
                reg.observe("a", "h", float(i))
            return json.dumps(reg.to_dict(), sort_keys=True)

        assert build() == build()

    def test_volatile_groups_excluded_from_snapshot(self):
        reg = MetricsRegistry()
        reg.observe(VOLATILE_GROUP_PREFIX + "sweep", "job_s", 1.0)
        reg.gauge("real", "x", 1.0)
        snap = reg.to_dict()
        assert "real" in snap
        assert VOLATILE_GROUP_PREFIX + "sweep" not in snap
        assert VOLATILE_GROUP_PREFIX + "sweep" in reg.to_dict(
            include_volatile=True
        )

    def test_merge_is_order_insensitive_for_histograms(self):
        def worker(seed):
            reg = MetricsRegistry()
            for i in range(40):
                reg.observe("m", "v", float((seed * 7 + i) % 13 + 1))
            return reg

        ab = MetricsRegistry()
        ab.merge(worker(1))
        ab.merge(worker(2))
        ba = MetricsRegistry()
        ba.merge(worker(2))
        ba.merge(worker(1))
        assert json.dumps(ab.to_dict(), sort_keys=True) == json.dumps(
            ba.to_dict(), sort_keys=True
        )

    def test_percentile_table_lists_all_histograms(self):
        reg = MetricsRegistry()
        for i in range(10):
            reg.observe("grp", "m1", float(i))
        table = percentile_table(reg, "t")
        rendered = table.render()
        assert "grp/m1" in rendered
        assert "p99" in rendered


class TestTelemetryIntegration:
    def test_observe_and_gauge_flow_to_metrics(self):
        with capture() as tel:
            tel.observe("g", "h", 3.0)
            tel.gauge("g", "v", 9.0)
        assert tel.metrics.histogram("g", "h").count == 1
        assert tel.metrics.get_gauge("g", "v") == 9.0

    def test_null_telemetry_metrics_are_inert(self):
        NULL_TELEMETRY.observe("g", "h", 1.0)
        NULL_TELEMETRY.gauge("g", "v", 1.0)
        NULL_TELEMETRY.count("g", "c", ts=5.0)
        assert NULL_TELEMETRY.metrics.histograms() == []
        assert NULL_TELEMETRY.counter_samples == ()

    def test_counter_samples_record_value_after_increment(self):
        tel = Telemetry()
        tel.count("g", "c", 2.0, ts=10.0)
        tel.count("g", "c", 3.0, ts=11.0)
        tel.count("g", "quiet", 1.0)  # no ts: aggregate only
        assert [s.value for s in tel.counter_samples] == [2.0, 5.0]
        assert tel.counter_samples[0] == CounterSample(10.0, "g", "c", 2.0)
        assert tel.counters.get("g", "quiet") == 1.0


class TestChromeTraceCounters:
    def test_counter_series_emitted_as_C_events(self):
        tel = Telemetry()
        tel.span("work", "cat", ("p", "l"), 0.0, 100.0)
        tel.count("tile/x", "dma_bytes", 64.0, ts=10.0)
        tel.count("tile/x", "dma_bytes", 64.0, ts=20.0)
        doc = chrome_trace(tel)
        series = [
            e for e in doc["traceEvents"]
            if e["ph"] == "C" and e["name"] == "tile/x:dma_bytes"
        ]
        # Two timestamped samples plus the final registry value at the
        # trace end.
        assert [e["ts"] for e in series] == [10.0, 20.0, 100.0]
        assert [e["args"]["dma_bytes"] for e in series] == [
            64.0, 128.0, 128.0,
        ]

    def test_untimestamped_counters_still_emit_final_value(self):
        tel = Telemetry()
        tel.count("g", "n", 5.0)
        doc = chrome_trace(tel)
        series = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert len(series) == 1
        assert series[0]["args"]["n"] == 5.0


class TestHistogramBucketedNegatives:
    """Regression: past the exact cap, negative observations used to be
    mis-bucketed and every percentile of an all-negative distribution
    collapsed toward the maximum.  The bucketed path must now walk the
    mirrored negative family (most negative first), then zeros, then
    positives."""

    def test_all_negative_bucketed_percentiles(self):
        hist = Histogram(exact_cap=4)
        for v in range(1, 1001):
            hist.observe(-float(v))
        assert not hist.exact
        p10, p50, p90 = (hist.percentile(q) for q in (10, 50, 90))
        assert p10 < p50 < p90 < 0
        # Exact answers are -900.1 / -500.5 / -100.9; the log buckets
        # are ~19% wide, so stay within 20%.
        assert p10 == pytest.approx(-900.1, rel=0.2)
        assert p50 == pytest.approx(-500.5, rel=0.2)
        assert p90 == pytest.approx(-100.9, rel=0.2)

    def test_mixed_sign_bucketed_percentiles_ordered(self):
        hist = Histogram(exact_cap=4)
        for v in range(-50, 51):
            hist.observe(float(v))
        assert not hist.exact
        assert hist.percentile(0) == -50.0  # clamped to observed min
        assert hist.percentile(50) == 0.0  # the zero bucket
        assert hist.percentile(100) == 50.0  # clamped to observed max
        walked = [hist.percentile(q) for q in range(0, 101, 5)]
        assert walked == sorted(walked)

    def test_merge_with_negatives_is_order_insensitive(self):
        def build(values, cap=4):
            hist = Histogram(exact_cap=cap)
            for value in values:
                hist.observe(value)
            return hist

        negatives = [-float(v) for v in range(1, 200)]
        positives = [float(v) for v in range(1, 100)]
        ab = build(negatives)
        ab.merge(build(positives))
        ba = build(positives)
        ba.merge(build(negatives))
        assert ab.summary() == ba.summary()


class TestHistogramSortedCache:
    """Regression: the exact path used to re-sort the sample on every
    percentile call; the sorted view is now cached and must be
    invalidated by both observe() and merge()."""

    def test_cache_reused_across_queries(self):
        hist = Histogram()
        for value in (5.0, 1.0, 3.0):
            hist.observe(value)
        hist.percentile(50)
        cached = hist._sorted
        assert cached == [1.0, 3.0, 5.0]
        hist.percentile(90)
        assert hist._sorted is cached  # no re-sort between observes

    def test_observe_invalidates_the_cache(self):
        hist = Histogram()
        hist.observe(1.0)
        hist.observe(3.0)
        assert hist.percentile(100) == 3.0
        hist.observe(10.0)  # after a cached percentile query
        assert hist.percentile(100) == 10.0
        assert hist.percentile(0) == 1.0

    def test_merge_invalidates_the_cache(self):
        a, b = Histogram(), Histogram()
        a.observe(1.0)
        assert a.percentile(50) == 1.0
        b.observe(9.0)
        a.merge(b)
        assert a.percentile(100) == 9.0
        assert a.percentile(50) == 5.0
