"""Cross-module integration tests: the full pipeline end to end."""

import numpy as np
import pytest

from repro import (
    half_precision_node,
    map_network,
    simulate,
    single_precision_node,
    zoo,
)
from repro.compiler.codegen import compile_forward
from repro.dnn.analysis import training_flops
from repro.functional import ReferenceModel, SGDTrainer, make_synthetic_dataset


@pytest.fixture(scope="module")
def sp():
    return single_precision_node()


class TestFullSuiteMapping:
    @pytest.mark.parametrize("name", list(zoo.BENCHMARKS))
    def test_every_benchmark_maps_and_simulates(self, sp, name):
        net = zoo.load(name)
        result = simulate(net, sp)
        assert result.training_images_per_s > 100
        assert result.evaluation_images_per_s > result.training_images_per_s
        assert 0 < result.pe_utilization <= 1
        assert result.average_power.total_w < 1400

    def test_half_precision_maps_everything(self):
        hp = half_precision_node()
        for name in ("AlexNet", "VGG-E"):
            result = simulate(zoo.load(name), hp)
            assert result.training_images_per_s > 100


class TestSustainedThroughputSanity:
    def test_sustained_flops_below_peak(self, sp):
        """Throughput x FLOPs/image never exceeds the machine peak."""
        for name in ("AlexNet", "VGG-D", "GoogLeNet"):
            net = zoo.load(name)
            result = simulate(net, sp)
            sustained = result.training_images_per_s * training_flops(net)
            assert sustained < sp.peak_flops

    def test_images_per_second_consistent_with_mapping(self, sp):
        net = zoo.alexnet()
        mapping = map_network(net, sp)
        direct = simulate(net, sp)
        via_mapping = simulate(net, sp, mapping=mapping)
        assert direct.training_images_per_s == pytest.approx(
            via_mapping.training_images_per_s
        )


class TestTrainThenRunOnEngine:
    def test_trained_weights_execute_on_hardware_model(self):
        """Train functionally, then compile the trained weights to ISA
        programs and check the engine classifies like the golden model —
        the full compiler/simulator loop on real (tiny) data."""
        net = zoo.tiny_cnn(num_classes=3, in_size=8)
        model = ReferenceModel(net, seed=0)
        x, y = make_synthetic_dataset(net, samples=24, num_classes=3, seed=1)
        trainer = SGDTrainer(model, learning_rate=0.05, batch_size=8)
        for epoch in range(3):
            trainer.train_epoch(x, y, epoch)

        compiled = compile_forward(net, model, rows=2)
        agree = 0
        for img in x[:6]:
            want = model.forward(img.astype(np.float32))
            got, _ = compiled.run(img.astype(np.float32))
            np.testing.assert_allclose(got, want, atol=1e-4)
            agree += int(got.argmax() == want.argmax())
        assert agree == 6
