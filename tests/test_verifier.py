"""Tests for the static program-set verifier."""

import numpy as np
import pytest

from repro.compiler.codegen import compile_forward
from repro.compiler.codegen_dag import compile_dag_forward
from repro.compiler.codegen_training import compile_training
from repro.compiler.verifier import (
    Issue,
    MachineShape,
    assert_verified,
    verify_programs,
)
from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation, PoolMode
from repro.dnn.zoo import tiny_cnn
from repro.errors import ProgramError
from repro.functional import ReferenceModel
from repro.isa import Opcode, Program, make


def shape_for(compiled):
    return MachineShape(
        mem_tiles=compiled.partition.mem_columns * compiled.rows,
        words_per_tile=compiled.chip.mem_tile.capacity_bytes // 4,
        trackers_per_tile=compiled.chip.mem_tile.tracker_count,
    )


def preloads_and_input(compiled):
    """(port, addr, words) for preloads plus the input home blocks."""
    rows = compiled.rows
    regions = [
        (pre.col * rows + pre.row, pre.addr, pre.data.size)
        for pre in compiled.preloads
    ]
    for home in compiled.partition.blocks_of(
        compiled.network.input.name
    ):
        regions.append((
            home.row,  # column 0
            home.address,
            home.feature_count * home.feature_words,
        ))
    return regions


class TestCompiledSetsVerify:
    def test_forward_compiler_output_verifies(self):
        net = tiny_cnn(num_classes=4, in_size=8)
        model = ReferenceModel(net, seed=0)
        compiled = compile_forward(net, model, rows=2)
        issues = verify_programs(
            compiled.programs, shape_for(compiled),
            preloaded=preloads_and_input(compiled),
        )
        assert issues == []

    def test_dag_compiler_output_verifies(self):
        b = NetworkBuilder("branchy")
        b.input(3, 8)
        trunk = b.conv(4, kernel=3, pad=1)
        left = b.conv(2, kernel=1, inputs=[trunk])
        right = b.conv(2, kernel=3, pad=1, inputs=[trunk])
        b.concat([left, right])
        b.fc(3, activation=Activation.SOFTMAX)
        net = b.build()
        model = ReferenceModel(net, seed=0)
        compiled = compile_dag_forward(net, model, rows=2)
        issues = verify_programs(
            compiled.programs, shape_for(compiled),
            preloaded=preloads_and_input(compiled),
        )
        assert issues == []

    def test_training_compiler_output_verifies(self):
        b = NetworkBuilder("trainable")
        b.input(2, 8)
        b.conv(4, kernel=3, pad=1, name="conv1")
        b.pool(2, mode=PoolMode.AVG, name="pool1")
        b.fc(3, activation=Activation.SOFTMAX, name="fc")
        net = b.build()
        model = ReferenceModel(net, seed=0)
        compiled = compile_training(net, model, rows=2)
        fwd = compiled.forward
        issues = verify_programs(
            fwd.programs, shape_for(fwd),
            preloaded=preloads_and_input(fwd),
            host_writes=[(
                compiled.err_port, compiled.err_addr, compiled.err_size
            )],
        )
        assert issues == []


class TestFindings:
    SHAPE = MachineShape(mem_tiles=4, words_per_tile=64,
                         trackers_per_tile=2)

    def _prog(self, *instrs):
        prog = Program(tile="t")
        for instr in instrs:
            prog.append(instr)
        prog.append(make(Opcode.HALT))
        return prog

    def test_out_of_bounds_write(self):
        prog = self._prog(make(
            Opcode.DMALOAD, src_addr=0, src_port=0, dst_addr=60,
            dst_port=1, size=8, is_accum=0,
        ))
        issues = verify_programs([prog], self.SHAPE,
                                 preloaded=[(0, 0, 8)])
        assert any("exceeds" in str(i) for i in issues)

    def test_nonexistent_port(self):
        prog = self._prog(make(
            Opcode.NDACCUM, src_addr=0, port=9, size=4, dst_addr=8,
        ))
        issues = verify_programs([prog], self.SHAPE)
        assert any("does not exist" in str(i) for i in issues)

    def test_read_of_never_written_memory(self):
        prog = self._prog(make(
            Opcode.DMALOAD, src_addr=0, src_port=0, dst_addr=0,
            dst_port=1, size=4, is_accum=0,
        ))
        issues = verify_programs([prog], self.SHAPE)
        assert any("never-written" in str(i) for i in issues)
        # A preload covering the source silences it.
        assert verify_programs(
            [prog], self.SHAPE, preloaded=[(0, 0, 4)]
        ) == []

    def test_tracker_file_overflow(self):
        trackers = [
            make(Opcode.MEMTRACK, addr=8 * i, port=0, size=4,
                 num_updates=1, num_reads=1)
            for i in range(3)
        ]
        prog = self._prog(*trackers)
        issues = verify_programs([prog], self.SHAPE)
        assert any("tracker file" in str(i) for i in issues)

    def test_assert_verified_raises(self):
        prog = self._prog(make(
            Opcode.NDACCUM, src_addr=0, port=9, size=4, dst_addr=8,
        ))
        with pytest.raises(ProgramError, match="verification failed"):
            assert_verified([prog], self.SHAPE)

    def test_external_memory_is_unbounded(self):
        prog = self._prog(make(
            Opcode.DMALOAD, src_addr=10**6, src_port=65535, dst_addr=0,
            dst_port=0, size=4, is_accum=0,
        ))
        issues = verify_programs([prog], self.SHAPE)
        assert issues == []

    def test_issue_str(self):
        issue = Issue("tile", 3, "boom")
        assert str(issue) == "tile@3: boom"
