"""Tests for the grid-wheel-ring interconnect graph (Figs 6/12)."""

import networkx as nx
import pytest

from repro.arch import single_precision_node
from repro.arch.topology import (
    bisection_bandwidth,
    build_fat_tree,
    build_topology,
    compare_with_fat_tree,
    conv_chip_name,
    hub_name,
    profile_topology,
)
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def node():
    return single_precision_node()


@pytest.fixture(scope="module")
def graph(node):
    return build_topology(node)


class TestStructure:
    def test_chip_inventory(self, graph, node):
        kinds = nx.get_node_attributes(graph, "kind")
        assert sum(1 for k in kinds.values() if k == "conv") == 16
        assert sum(1 for k in kinds.values() if k == "fc") == 4
        # No dedicated switch hardware anywhere: every link is
        # point-to-point between processing chips (Sec 3.2.1).
        assert all(k in ("conv", "fc") for k in kinds.values())

    def test_link_classes_and_counts(self, graph, node):
        kinds = [d["kind"] for _, _, d in graph.edges(data=True)]
        assert kinds.count("spoke") == 16  # 4 per wheel
        assert kinds.count("arc") == 16  # rim of each wheel
        assert kinds.count("ring") == 4  # hub ring

    def test_bandwidth_attributes(self, graph, node):
        for _, _, data in graph.edges(data=True):
            expected = {
                "spoke": node.cluster.spoke_bandwidth,
                "arc": node.cluster.arc_bandwidth,
                "ring": node.ring_bandwidth,
            }[data["kind"]]
            assert data["bandwidth"] == expected

    def test_wheel_adjacency(self, graph):
        """Adjacent ConvLayer chips of a wheel are one arc apart; their
        hub is one spoke away — the locality the mapping exploits."""
        a = conv_chip_name(0, 0)
        b = conv_chip_name(0, 1)
        assert nx.shortest_path_length(graph, a, b) == 1
        assert nx.shortest_path_length(graph, a, hub_name(0)) == 1

    def test_cross_cluster_path_goes_through_ring(self, graph):
        path = nx.shortest_path(
            graph, conv_chip_name(0, 0), conv_chip_name(2, 0)
        )
        hubs = [n for n in path if n.endswith("hub")]
        assert len(hubs) >= 2  # enters the ring at one hub, exits at another


class TestFatTreeComparison:
    def test_profiles(self, node):
        profiles = compare_with_fat_tree(node)
        ours = profiles["grid-wheel-ring"]
        tree = profiles["fat-tree"]
        assert ours.chips == tree.chips == 20
        # The fat tree needs dedicated switches; ScaleDeep does not.
        assert tree.switch_nodes > 0
        assert ours.switch_nodes == 0
        # Producer->consumer locality: one hop on the wheel rim, two+
        # through the tree (up to a switch and back down).
        assert ours.neighbour_hops == 1
        assert tree.neighbour_hops >= 2
        # FC work sits one spoke away on ScaleDeep.
        assert ours.fc_hops == 1.0

    def test_fat_tree_validation(self):
        with pytest.raises(ConfigError):
            build_fat_tree(0, 1e9)
        with pytest.raises(ConfigError):
            build_fat_tree(8, 1e9, arity=1)

    def test_fat_tree_shape(self):
        tree = build_fat_tree(16, 1e9, arity=4)
        leaves = [n for n, d in tree.nodes(data=True) if d["kind"] == "conv"]
        assert len(leaves) == 16
        assert nx.is_connected(tree)

    def test_bisection_bandwidth_positive(self, graph):
        assert bisection_bandwidth(graph) > 0


def _shrunk_node(node, clusters, conv_chips):
    """The node with its hierarchy shrunk to the degenerate edge sizes
    a scale-out sweep can construct."""
    from dataclasses import replace

    return replace(
        node,
        cluster_count=clusters,
        cluster=replace(node.cluster, conv_chip_count=conv_chips),
    )


class TestScaleOutEdges:
    """Degenerate hierarchy sizes: graphs must stay simple (no
    self-loops) and the fat-tree comparison must stay well-defined."""

    def test_single_cluster_has_no_ring(self, node):
        graph = build_topology(_shrunk_node(node, 1, 4))
        kinds = [d["kind"] for _, _, d in graph.edges(data=True)]
        assert kinds.count("ring") == 0
        assert nx.number_of_selfloops(graph) == 0
        assert nx.is_connected(graph)

    def test_single_chip_wheel_has_no_arcs(self, node):
        graph = build_topology(_shrunk_node(node, 4, 1))
        kinds = [d["kind"] for _, _, d in graph.edges(data=True)]
        assert kinds.count("arc") == 0
        assert kinds.count("spoke") == 4
        assert nx.number_of_selfloops(graph) == 0

    def test_minimal_node_is_one_spoke(self, node):
        graph = build_topology(_shrunk_node(node, 1, 1))
        assert graph.number_of_nodes() == 2
        assert graph.number_of_edges() == 1
        assert bisection_bandwidth(graph) > 0

    def test_fat_tree_comparison_at_minimal_counts(self, node):
        profiles = compare_with_fat_tree(_shrunk_node(node, 1, 1))
        ours = profiles["grid-wheel-ring"]
        tree = profiles["fat-tree"]
        assert ours.chips == tree.chips == 2
        assert ours.switch_nodes == 0


class TestSystemTopology:
    def test_one_node_system_is_the_node_graph_prefixed(self, node):
        from repro.arch.system import make_system
        from repro.arch.topology import build_system_topology

        base = build_topology(node)
        system = build_system_topology(make_system(node))
        assert system.number_of_nodes() == base.number_of_nodes()
        assert system.number_of_edges() == base.number_of_edges()
        kinds = [d["kind"] for _, _, d in system.edges(data=True)]
        assert "fabric" not in kinds
        assert all(v.startswith("node0/") for v in system.nodes)

    def test_fabric_ring_joins_the_nodes(self, node):
        from repro.arch.system import make_system
        from repro.arch.topology import build_system_topology

        system_cfg = make_system(node, 4)
        graph = build_system_topology(system_cfg)
        base = build_topology(node)
        assert graph.number_of_nodes() == 4 * base.number_of_nodes()
        fabric = [
            (u, v, d) for u, v, d in graph.edges(data=True)
            if d["kind"] == "fabric"
        ]
        assert len(fabric) == 4  # a ring over the 4 nodes
        assert all(
            d["bandwidth"] == system_cfg.fabric_bandwidth
            for _, _, d in fabric
        )
        assert nx.is_connected(graph)
        # Cross-node paths exist and transit the fabric endpoints.
        path = nx.shortest_path(
            graph, "node0/cluster0/conv0", "node2/cluster0/conv0"
        )
        assert any("/hub" in v for v in path)

    def test_two_node_fabric_is_simple(self, node):
        """The 2-node 'ring' must not emit parallel or self edges."""
        from repro.arch.system import make_system
        from repro.arch.topology import build_system_topology

        graph = build_system_topology(make_system(node, 2))
        assert nx.number_of_selfloops(graph) == 0
        fabric = [
            d for _, _, d in graph.edges(data=True)
            if d["kind"] == "fabric"
        ]
        assert len(fabric) == 1  # collapsed, not doubled
