"""Roofline analysis tests: machine balance vs layer intensity."""

import pytest

from repro.arch import FREQUENCY_HZ, conv_chip, fc_chip
from repro.arch.roofline import (
    Boundedness,
    ChipRoofline,
    boundedness_summary,
    chip_roofline,
    network_roofline,
)
from repro.dnn import zoo
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def conv_rl():
    return chip_roofline(conv_chip(), FREQUENCY_HZ)


@pytest.fixture(scope="module")
def fc_rl():
    return chip_roofline(fc_chip(), FREQUENCY_HZ)


class TestChipRoofline:
    def test_balance_points_reflect_heterogeneity(self, conv_rl, fc_rl):
        """The FcLayer chip is provisioned for far higher B/F than the
        ConvLayer chip — the Sec 3.2.5 design split in one number."""
        assert fc_rl.balance_bytes_per_flop > (
            5 * conv_rl.balance_bytes_per_flop
        )

    def test_conv_balance_serves_convolutions(self, conv_rl):
        """CONV layers (B/F ~0.006-0.015, Fig 4) sit compute-bound."""
        assert conv_rl.classify(0.015) is Boundedness.COMPUTE
        assert conv_rl.balance_bytes_per_flop > 0.015

    def test_attainable_flops_shape(self, conv_rl):
        assert conv_rl.attainable_flops(0.0) == conv_rl.peak_flops
        knee = conv_rl.balance_bytes_per_flop
        assert conv_rl.attainable_flops(knee) == pytest.approx(
            conv_rl.peak_flops
        )
        assert conv_rl.attainable_flops(10 * knee) == pytest.approx(
            conv_rl.peak_flops / 10
        )

    def test_negative_intensity_rejected(self, conv_rl):
        with pytest.raises(ConfigError):
            conv_rl.attainable_flops(-1.0)


class TestNetworkRoofline:
    def test_alexnet_conv_layers_compute_bound(self, conv_rl):
        points = {
            p.layer: p
            for p in network_roofline(zoo.alexnet(), conv_rl)
        }
        for layer in ("conv1", "conv2", "conv3", "conv4", "conv5"):
            assert points[layer].boundedness is Boundedness.COMPUTE

    def test_unbatched_fc_bandwidth_bound_even_on_fc_chip(self, fc_rl):
        """Without batching, fc6's ~2 B/F exceeds even the FcLayer
        chip's balance — the problem the wheel exists to solve."""
        points = {
            p.layer: p
            for p in network_roofline(zoo.alexnet(), fc_rl,
                                      weight_reuse_batch=1)
        }
        assert points["fc6"].boundedness is Boundedness.BANDWIDTH
        assert points["fc6"].attainable_fraction < 0.2

    def test_wheel_batching_moves_fc_under_the_roof(self, fc_rl):
        """Sec 3.3.1: batching amortises weight traffic by the batch
        size; at the wheel+ring batch the FC layers become viable."""
        batched = {
            p.layer: p
            for p in network_roofline(zoo.alexnet(), fc_rl,
                                      weight_reuse_batch=128)
        }
        unbatched = {
            p.layer: p
            for p in network_roofline(zoo.alexnet(), fc_rl,
                                      weight_reuse_batch=1)
        }
        assert batched["fc6"].attainable_fraction == pytest.approx(1.0)
        assert (
            batched["fc6"].attainable_fraction
            > 5 * unbatched["fc6"].attainable_fraction
        )
        assert batched["fc6"].boundedness is Boundedness.COMPUTE

    def test_summary_counts(self, conv_rl):
        points = network_roofline(zoo.alexnet(), conv_rl)
        summary = boundedness_summary(points)
        assert sum(summary.values()) == len(points)

    def test_bad_batch_rejected(self, fc_rl):
        with pytest.raises(ConfigError):
            network_roofline(zoo.alexnet(), fc_rl, weight_reuse_batch=0)
