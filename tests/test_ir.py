"""Tests for the unified compiler IR: types, serialisation, verification."""

import pytest

from repro.arch import single_precision_node
from repro.compiler.ir import (
    IR_SCHEMA_VERSION,
    IREdge,
    IROp,
    MappingIR,
    Phase,
    build_tile_ir,
)
from repro.compiler.partition import partition_sequential
from repro.compiler.pipeline import compile_network
from repro.compiler.verifier import MachineShape, assert_ir_verified, verify_ir
from repro.dnn import zoo
from repro.errors import IRError, IRVerificationError, ReproError

ALL_NETWORKS = sorted(zoo.BENCHMARKS) + sorted(zoo.EXTRAS)


def _tiny_ir(level="unit"):
    ir = MappingIR(network="t", node="n", level=level)
    ir.add_op(IROp(name="fp:a", layer="a", kind="conv",
                   phase=Phase.FP, column=0, row=0))
    ir.add_op(IROp(name="fp:b", layer="b", kind="fc",
                   phase=Phase.FP, column=1, row=0))
    ir.add_edge("fp:a", "fp:b", words=16)
    ir.schedule = ["fp:a", "fp:b"]
    return ir


class TestPhase:
    def test_parse_is_case_insensitive(self):
        assert Phase.parse("FP") is Phase.FP
        assert Phase.parse("wg") is Phase.WG

    def test_parse_unknown_is_typed(self):
        with pytest.raises(IRError, match="unknown phase"):
            Phase.parse("sideways")
        assert issubclass(IRError, ReproError)


class TestStructure:
    def test_duplicate_op_rejected(self):
        ir = _tiny_ir()
        with pytest.raises(IRError, match="duplicate op"):
            ir.add_op(IROp(name="fp:a", layer="a", kind="conv",
                           phase=Phase.FP, column=0))

    def test_missing_op_lookup_is_typed(self):
        with pytest.raises(IRError, match="no op named"):
            _tiny_ir().op("fp:ghost")

    def test_edge_queries(self):
        ir = _tiny_ir()
        assert [e.dst for e in ir.consumers_of("fp:a")] == ["fp:b"]
        assert [e.src for e in ir.producers_of("fp:b")] == ["fp:a"]

    def test_filtered_keeps_one_phase(self):
        ir = _tiny_ir()
        ir.add_op(IROp(name="bp:b", layer="b", kind="fc",
                       phase=Phase.BP, column=1, row=0))
        ir.schedule.append("bp:b")
        fp = ir.filtered(Phase.FP)
        assert {op.name for op in fp.ops} == {"fp:a", "fp:b"}
        assert fp.schedule == ["fp:a", "fp:b"]
        # The original is untouched.
        assert len(ir.ops) == 3

    def test_stats_counts_phases_and_words(self):
        stats = _tiny_ir().stats()
        assert stats["ops"] == 2
        assert stats["ops_fp"] == 2
        assert stats["ops_bp"] == 0
        assert stats["edge_words"] == 16


class TestSerialisation:
    def test_round_trip_is_lossless(self):
        ir = _tiny_ir()
        ir.meta["note"] = "x"
        again = MappingIR.from_json(ir.to_json())
        assert again.to_json() == ir.to_json()
        assert again.ops[0].phase is Phase.FP

    def test_schema_version_mismatch_is_typed(self):
        form = _tiny_ir().to_dict()
        form["schema_version"] = "0"
        with pytest.raises(IRError, match="schema version"):
            MappingIR.from_dict(form)

    def test_malformed_json_is_typed(self):
        with pytest.raises(IRError, match="malformed IR JSON"):
            MappingIR.from_json("{nope")

    @pytest.mark.parametrize("name", ALL_NETWORKS)
    def test_every_zoo_network_round_trips(self, name):
        """compile -> serialise -> deserialise is lossless and the
        deserialised IR still verifies clean, for the whole zoo."""
        net = zoo.load(name)
        compiled = compile_network(net, single_precision_node())
        ir = compiled.ir
        assert ir.schema_version == IR_SCHEMA_VERSION
        again = MappingIR.from_json(ir.to_json())
        assert again.to_json() == ir.to_json()
        assert verify_ir(again) == []

    def test_tile_level_round_trip(self):
        net = zoo.load("TinyCNN")
        part = partition_sequential(net, 2, 1 << 20)
        ir = build_tile_ir(net, part, 2, phases=(Phase.FP,))
        again = MappingIR.from_json(ir.to_json())
        assert again.to_json() == ir.to_json()
        assert again.level == "tile"


class TestVerifier:
    def test_clean_ir_has_no_findings(self):
        assert verify_ir(_tiny_ir()) == []

    def test_dangling_edge_endpoint(self):
        ir = _tiny_ir()
        ir.add_edge("fp:a", "fp:ghost", words=4)
        assert any("does not exist" in i.message for i in verify_ir(ir))

    def test_non_positive_edge_words(self):
        ir = _tiny_ir()
        ir.add_edge("fp:b", "fp:a", words=0)
        assert any("moves 0 words" in i.message for i in verify_ir(ir))

    def test_self_edge(self):
        ir = _tiny_ir()
        ir.add_edge("fp:a", "fp:a", words=4)
        assert any("self-edge" in i.message for i in verify_ir(ir))

    def test_schedule_must_reference_real_ops_once(self):
        ir = _tiny_ir()
        ir.schedule = ["fp:a", "fp:a", "fp:ghost"]
        messages = [i.message for i in verify_ir(ir)]
        assert any("scheduled twice" in m for m in messages)
        assert any("does not exist" in m for m in messages)

    def test_tile_home_block_bounds(self):
        ir = _tiny_ir(level="tile")
        ir.ops[0].attrs.update(
            address=1000, feature_count=8, feature_words=4
        )
        shape = MachineShape(
            mem_tiles=4, words_per_tile=512, trackers_per_tile=8
        )
        assert any(
            "exceeds" in i.message for i in verify_ir(ir, shape)
        )

    def test_tile_home_block_overlap(self):
        ir = _tiny_ir(level="tile")
        for op in ir.ops:
            op.attrs.update(address=0, feature_count=4, feature_words=4)
        # Same tile: force both onto column 0, row 0.
        ir.ops[1] = IROp(name="fp:b", layer="b", kind="fc",
                         phase=Phase.FP, column=0, row=0,
                         attrs=dict(ir.ops[1].attrs))
        shape = MachineShape(
            mem_tiles=4, words_per_tile=512, trackers_per_tile=8
        )
        assert any("overlaps" in i.message for i in verify_ir(ir, shape))

    def test_assert_raises_typed_error_with_issues(self):
        ir = _tiny_ir()
        ir.add_edge("fp:a", "fp:ghost", words=4)
        with pytest.raises(IRVerificationError) as exc:
            assert_ir_verified(ir)
        assert exc.value.issues
        assert issubclass(IRVerificationError, ReproError)
