"""Persistent-runner tests and golden per-layer shape tables."""

import numpy as np
import pytest

from repro.compiler.codegen import compile_forward
from repro.dnn import zoo
from repro.dnn.layers import FeatureShape
from repro.functional import ReferenceModel


class TestForwardRunner:
    @pytest.fixture(scope="class")
    def setup(self):
        net = zoo.tiny_cnn(num_classes=4, in_size=8)
        model = ReferenceModel(net, seed=0)
        compiled = compile_forward(net, model, rows=2)
        return net, model, compiled.runner()

    def _image(self, net, seed):
        shape = net.input.output_shape
        return np.random.default_rng(seed).normal(
            0, 1, (shape.count, shape.height, shape.width)
        ).astype(np.float32)

    def test_stream_of_images_matches_golden(self, setup):
        net, model, run = setup
        for seed in range(5):
            img = self._image(net, seed)
            got, _ = run(img)
            np.testing.assert_allclose(got, model.forward(img), atol=1e-4)
        assert run.images_run >= 5

    def test_state_isolation_between_images(self, setup):
        """A second image must not inherit partials from the first —
        the overwrite-first emission guarantees it."""
        net, model, run = setup
        a = self._image(net, 100)
        first, _ = run(a)
        run(self._image(net, 101))
        again, _ = run(a)
        np.testing.assert_allclose(first, again, atol=1e-6)

    def test_weights_persist_across_images(self, setup):
        net, _, run = setup
        tile = run.machine.mem_tile(0)
        snapshot = tile.words.copy()
        run(self._image(net, 200))
        # Forward-only programs never touch weights.
        kern_blocks = [
            v for k, v in run.compiled.partition.allocators[
                (1, 0)
            ].blocks.items() if "kernels" in k
        ]
        for base, words in kern_blocks:
            np.testing.assert_array_equal(
                run.machine.mem_tile(run.machine.mem_tile_id(1, 0))
                .read(base, words),
                run.machine.mem_tile(run.machine.mem_tile_id(1, 0))
                .read(base, words),
            )
        assert snapshot.shape == tile.words.shape


#: Golden per-layer output shapes (the standard published dimensions).
ALEXNET_SHAPES = {
    "conv1": (96, 55, 55),
    "pool1": (96, 27, 27),
    "conv2": (256, 27, 27),
    "pool2": (256, 13, 13),
    "conv3": (384, 13, 13),
    "conv4": (384, 13, 13),
    "conv5": (256, 13, 13),
    "pool3": (256, 6, 6),
    "fc6": (4096, 1, 1),
    "fc7": (4096, 1, 1),
    "fc8": (1000, 1, 1),
}

VGG_A_SHAPES = {
    "conv1": (64, 224, 224),
    "pool1": (64, 112, 112),
    "conv2": (128, 112, 112),
    "pool2": (128, 56, 56),
    "conv4": (256, 56, 56),
    "pool3": (256, 28, 28),
    "conv6": (512, 28, 28),
    "pool4": (512, 14, 14),
    "conv8": (512, 14, 14),
    "pool5": (512, 7, 7),
    "fc1": (4096, 1, 1),
}

GOOGLENET_SHAPES = {
    "conv1": (64, 112, 112),
    "pool1": (64, 56, 56),
    "conv2": (192, 56, 56),
    "pool2": (192, 28, 28),
    "inc3a_out": (256, 28, 28),
    "inc3b_out": (480, 28, 28),
    "pool3": (480, 14, 14),
    "inc4e_out": (832, 14, 14),
    "pool4": (832, 7, 7),
    "inc5b_out": (1024, 7, 7),
    "gpool": (1024, 1, 1),
    "fc": (1000, 1, 1),
}

RESNET18_SHAPES = {
    "conv1": (64, 112, 112),
    "pool1": (64, 56, 56),
    "s1b1_add": (64, 56, 56),
    "s2b0_add": (128, 28, 28),
    "s3b0_add": (256, 14, 14),
    "s4b1_add": (512, 7, 7),
    "gpool": (512, 1, 1),
    "fc": (1000, 1, 1),
}


class TestGoldenShapes:
    @pytest.mark.parametrize(
        "factory,golden",
        [
            (zoo.alexnet, ALEXNET_SHAPES),
            (zoo.vgg_a, VGG_A_SHAPES),
            (zoo.googlenet, GOOGLENET_SHAPES),
            (zoo.resnet18, RESNET18_SHAPES),
        ],
        ids=["AlexNet", "VGG-A", "GoogLeNet", "ResNet18"],
    )
    def test_layer_shapes_match_published(self, factory, golden):
        net = factory()
        for layer, (c, h, w) in golden.items():
            assert net[layer].output_shape == FeatureShape(c, h, w), layer
