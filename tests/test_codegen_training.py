"""End-to-end training on the engine vs the golden model.

These tests compile full FP+BP+WG+update programs and run SGD
iterations on the functional engine, checking outputs, weight
gradients/updates, and multi-step weight evolution against the numpy
reference with frozen biases.
"""

import numpy as np
import pytest

from repro.compiler.codegen_training import (
    CompiledTraining,
    compile_training,
)
from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation, PoolMode
from repro.dnn.zoo import tiny_mlp
from repro.errors import MappingError
from repro.functional import ReferenceModel
from repro.isa.instructions import Opcode


def tiny_avg_cnn(classes=3, size=8):
    """A training-compilable CNN: stride-1 convs, avg pools, softmax."""
    b = NetworkBuilder("TinyAvgCNN")
    b.input(2, size)
    b.conv(4, kernel=3, pad=1, name="conv1")
    b.pool(2, mode=PoolMode.AVG, name="pool1")
    b.conv(6, kernel=3, pad=1, name="conv2")
    b.pool(2, mode=PoolMode.AVG, name="pool2")
    b.fc(8, name="fc1")
    b.fc(classes, activation=Activation.SOFTMAX, name="fc2")
    return b.build()


def reference_step(model, image, label, lr):
    """One reference SGD step with frozen biases; returns (out, loss)."""
    out = model.forward(image)
    loss = model.backward(label)
    for st in model.state.values():
        if st.grad_bias is not None:
            st.grad_bias[:] = 0
    model.apply_gradients(lr)
    return out, loss


def random_image(net, seed):
    shape = net.input.output_shape
    rng = np.random.default_rng(seed)
    return rng.normal(
        0, 1, (shape.count, shape.height, shape.width)
    ).astype(np.float32)


WEIGHTED = ("conv1", "conv2", "fc1", "fc2")


class TestSingleStep:
    @pytest.fixture(scope="class")
    def stepped(self):
        net = tiny_avg_cnn()
        model = ReferenceModel(net, seed=3)
        compiled = compile_training(net, model, rows=2,
                                    learning_rate=(1, 100))
        image = random_image(net, 0)
        out, loss, report = compiled.train_step(image, 1)
        ref_out, ref_loss = reference_step(model, image, 1, 0.01)
        return compiled, model, out, loss, ref_out, ref_loss, report

    def test_forward_output_matches(self, stepped):
        _, _, out, _, ref_out, _, _ = stepped
        np.testing.assert_allclose(out, ref_out, atol=1e-5)

    def test_loss_matches(self, stepped):
        _, _, _, loss, _, ref_loss, _ = stepped
        assert loss == pytest.approx(ref_loss, rel=1e-4)

    @pytest.mark.parametrize("layer", WEIGHTED)
    def test_updated_weights_match(self, stepped, layer):
        compiled, model = stepped[0], stepped[1]
        got = compiled.read_weights(layer)
        want = model.state[layer].weights
        np.testing.assert_allclose(
            got.reshape(want.shape), want, atol=1e-5
        )

    def test_synchronization_was_exercised(self, stepped):
        report = stepped[6]
        assert report.blocked_reads > 100  # the backward wave waited


class TestMultiStep:
    def test_weights_track_reference_over_steps(self):
        net = tiny_avg_cnn()
        model = ReferenceModel(net, seed=7)
        compiled = compile_training(net, model, rows=2,
                                    learning_rate=(1, 100))
        rng = np.random.default_rng(42)
        for step in range(4):
            image = random_image(net, seed=100 + step)
            label = int(rng.integers(0, 3))
            out, loss, _ = compiled.train_step(image, label)
            ref_out, ref_loss = reference_step(model, image, label, 0.01)
            # Borderline-ReLU mask flips accumulate tiny divergence.
            np.testing.assert_allclose(out, ref_out, atol=1e-3)
        for layer in WEIGHTED:
            got = compiled.read_weights(layer)
            want = model.state[layer].weights
            np.testing.assert_allclose(
                got.reshape(want.shape), want, atol=1e-3
            )

    def test_training_reduces_loss_on_repeated_image(self):
        """SGD on the engine actually learns: repeating one image must
        drive its loss down."""
        net = tiny_avg_cnn()
        model = ReferenceModel(net, seed=1)
        compiled = compile_training(net, model, rows=2,
                                    learning_rate=(5, 100))
        image = random_image(net, 5)
        losses = [compiled.train_step(image, 2)[1] for _ in range(5)]
        assert losses[-1] < losses[0]

    def test_mlp_training(self):
        net = tiny_mlp(num_classes=3, in_features=6, hidden=5)
        model = ReferenceModel(net, seed=0)
        compiled = compile_training(net, model, rows=2,
                                    learning_rate=(2, 100))
        image = random_image(net, 9)
        out, loss, _ = compiled.train_step(image, 0)
        ref_out, ref_loss = reference_step(model, image, 0, 0.02)
        np.testing.assert_allclose(out, ref_out, atol=1e-5)
        for layer in ("fc1", "fc2"):
            got = compiled.read_weights(layer)
            want = model.state[layer].weights
            np.testing.assert_allclose(
                got.reshape(want.shape), want, atol=1e-5
            )


class TestProgramStructure:
    def test_training_opcodes_present(self):
        net = tiny_avg_cnn()
        model = ReferenceModel(net, seed=3)
        compiled = compile_training(net, model, rows=2)
        used = {
            instr.opcode
            for prog in compiled.forward.programs
            for instr in prog
        }
        for op in (Opcode.NDACTBP, Opcode.NDUPSAMP, Opcode.WUPDATE,
                   Opcode.NDACCUM, Opcode.NDCONV, Opcode.MATMUL,
                   Opcode.MEMTRACK, Opcode.DMA_MEMTRACK):
            assert op in used, op

    def test_bp_and_wg_programs_emitted(self):
        net = tiny_avg_cnn()
        model = ReferenceModel(net, seed=3)
        compiled = compile_training(net, model, rows=2)
        names = {p.tile for p in compiled.forward.programs}
        assert any(n.startswith("bp:conv2") for n in names)
        assert any(n.startswith("bp:pool1") for n in names)
        assert any(n.startswith("wg:conv1") for n in names)
        assert any(n.startswith("wg:fc2") for n in names)
        # conv1's input is the image: no BP program for it.
        assert not any(n.startswith("bp:conv1") for n in names)


class TestScopeValidation:
    def test_strided_conv_rejected(self):
        b = NetworkBuilder("strided")
        b.input(2, 8)
        b.conv(4, kernel=3, stride=2)
        b.fc(3, activation=Activation.SOFTMAX)
        net = b.build()
        with pytest.raises(MappingError):
            compile_training(net, ReferenceModel(net))

    def test_nontiling_max_pool_rejected(self):
        """Max-pool BP needs the window to tile the input exactly;
        overlap-truncating sweeps are out of scope."""
        b = NetworkBuilder("maxpool-odd")
        b.input(2, 9)
        b.conv(4, kernel=3, pad=1)  # 9x9: 2x2 windows truncate
        b.pool(2, mode=PoolMode.MAX)
        b.fc(3, activation=Activation.SOFTMAX)
        net = b.build()
        with pytest.raises(MappingError):
            compile_training(net, ReferenceModel(net))

    def test_nondividing_stride_rejected(self):
        b = NetworkBuilder("badstride")
        b.input(2, 8)
        b.conv(4, kernel=3, stride=2)  # (8-3) % 2 != 0
        b.fc(3, activation=Activation.SOFTMAX)
        net = b.build()
        with pytest.raises(MappingError):
            compile_training(net, ReferenceModel(net))

    def test_non_softmax_head_rejected(self):
        b = NetworkBuilder("nohead")
        b.input(2, 8)
        b.conv(4, kernel=3, pad=1)
        b.fc(3)  # relu head
        net = b.build()
        with pytest.raises(MappingError):
            compile_training(net, ReferenceModel(net))


class TestMinibatchAccumulation:
    """Sec 2.2 semantics: gradients accumulate over the minibatch and
    the weights update once — on the engine."""

    @pytest.fixture(scope="class")
    def compiled(self):
        net = tiny_avg_cnn()
        model = ReferenceModel(net, seed=3)
        compiled = compile_training(
            net, model, rows=2, learning_rate=(2, 100), minibatch=4
        )
        return net, model, compiled

    def test_minibatch_matches_reference(self, compiled):
        net, model, compiled = compiled
        rng = np.random.default_rng(0)
        shape = net.input.output_shape
        images = rng.normal(
            0, 1, (4, shape.count, shape.height, shape.width)
        ).astype(np.float32)
        labels = rng.integers(0, 3, 4)

        mean_loss, correct = compiled.train_minibatch(images, labels)

        ref_losses = []
        for img, lbl in zip(images, labels):
            model.forward(img)
            ref_losses.append(model.backward(int(lbl)))
        for st in model.state.values():
            if st.grad_bias is not None:
                st.grad_bias[:] = 0
        model.apply_gradients(0.02, scale=1.0 / 4)

        assert mean_loss == pytest.approx(np.mean(ref_losses), rel=1e-4)
        assert 0 <= correct <= 4
        for layer in WEIGHTED:
            got = compiled.read_weights(layer)
            want = model.state[layer].weights
            np.testing.assert_allclose(
                got.reshape(want.shape), want, atol=1e-5
            )

    def test_weights_frozen_until_update(self, compiled):
        net, _, compiled = compiled
        rng = np.random.default_rng(9)
        shape = net.input.output_shape
        before = compiled.read_weights("conv1").copy()
        image = rng.normal(
            0, 1, (shape.count, shape.height, shape.width)
        ).astype(np.float32)
        compiled.train_step(image, 0)  # accumulation only
        np.testing.assert_array_equal(
            compiled.read_weights("conv1"), before
        )
        # Drain the partial accumulation so later tests start clean.
        compiled.apply_update()
        assert not np.array_equal(compiled.read_weights("conv1"), before)

    def test_wrong_batch_size_rejected(self, compiled):
        net, _, compiled = compiled
        shape = net.input.output_shape
        images = np.zeros(
            (2, shape.count, shape.height, shape.width), np.float32
        )
        with pytest.raises(Exception):
            compiled.train_minibatch(images, [0, 1])

    def test_per_image_mode_has_no_deferred_update(self):
        net = tiny_avg_cnn()
        model = ReferenceModel(net, seed=0)
        compiled = compile_training(net, model, rows=2)  # minibatch 1
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            compiled.apply_update()


class TestExtendedTrainingScope:
    """Max-pool routing and strided-convolution BP on the engine."""

    def _check_step(self, net, seed=3, lr=(1, 100)):
        model = ReferenceModel(net, seed=seed)
        compiled = compile_training(net, model, rows=2, learning_rate=lr)
        image = random_image(net, 0)
        out, loss, report = compiled.train_step(image, 1)
        ref_out, _ = reference_step(model, image, 1, lr[0] / lr[1])
        np.testing.assert_allclose(out, ref_out, atol=1e-5)
        for name, state in model.state.items():
            if state.weights is None:
                continue
            got = compiled.read_weights(name)
            np.testing.assert_allclose(
                got.reshape(state.weights.shape), state.weights,
                atol=1e-4,
            )
        return report

    def test_max_pool_network_trains(self):
        """The original tiny_cnn — MAX pools — now trains end to end,
        errors routed to the recomputed argmax positions."""
        from repro.dnn.zoo import tiny_cnn

        report = self._check_step(tiny_cnn(num_classes=3, in_size=8))
        assert report.blocked_reads > 0

    def test_strided_conv_trains(self):
        """Strided-convolution BP via zero-insert dilation."""
        b = NetworkBuilder("strided")
        b.input(2, 11)
        b.conv(4, kernel=3, stride=2, name="conv1")
        b.conv(6, kernel=3, pad=1, name="conv2")
        b.fc(3, activation=Activation.SOFTMAX, name="fc")
        self._check_step(b.build())

    def test_stride_and_max_pool_combined(self):
        """AlexNet's front-end pattern: strided conv then max pool."""
        b = NetworkBuilder("alexish")
        b.input(3, 15)
        b.conv(4, kernel=5, stride=2, name="conv1")
        b.pool(2, name="pool1")  # MAX
        b.fc(4, activation=Activation.SOFTMAX, name="fc")
        self._check_step(b.build())

    def test_max_pool_training_learns(self):
        from repro.dnn.zoo import tiny_cnn

        net = tiny_cnn(num_classes=3, in_size=8)
        model = ReferenceModel(net, seed=1)
        compiled = compile_training(net, model, rows=2,
                                    learning_rate=(5, 100))
        image = random_image(net, 5)
        losses = [compiled.train_step(image, 2)[1] for _ in range(5)]
        assert losses[-1] < losses[0]
