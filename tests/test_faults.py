"""Tests for the fault-injection subsystem: spec/model determinism,
fault-aware remapping, performance degradation, topology rerouting, the
engine watchdog and DMA bit-flips."""

import numpy as np
import pytest

from repro.arch import single_precision_node
from repro.arch.presets import conv_chip
from repro.arch.topology import degraded_topology, reroute_penalties
from repro.compiler.fingerprint import compile_digest
from repro.compiler.mapping import map_network
from repro.dnn import zoo
from repro.errors import (
    ConfigError,
    SimulationError,
    SimulationTimeout,
    UnmappableError,
)
from repro.faults import (
    ALL_KINDS,
    FaultKind,
    FaultModel,
    FaultSpec,
    parse_kinds,
    sample_faults,
)
from repro.isa import assemble
from repro.sim.allreduce import ring_allreduce_cycles
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.perf import simulate


def node():
    return single_precision_node()


class TestFaultSpec:
    def test_rate_bounds(self):
        with pytest.raises(ConfigError):
            FaultSpec(rate=-0.1)
        with pytest.raises(ConfigError):
            FaultSpec(rate=1.5)

    def test_slow_factor_bounds(self):
        with pytest.raises(ConfigError):
            FaultSpec(rate=0.1, slow_factor=0.0)
        with pytest.raises(ConfigError):
            FaultSpec(rate=0.1, slow_factor=1.5)

    def test_needs_kinds(self):
        with pytest.raises(ConfigError):
            FaultSpec(rate=0.1, kinds=())

    def test_parse_kinds(self):
        assert parse_kinds("tile-dead,link-down") == (
            FaultKind.TILE_DEAD,
            FaultKind.LINK_DOWN,
        )
        with pytest.raises(ConfigError):
            parse_kinds("bogus")
        with pytest.raises(ConfigError):
            parse_kinds("")

    def test_dict_roundtrip(self):
        spec = FaultSpec(rate=0.02, seed=7, kinds=ALL_KINDS)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError):
            FaultSpec.from_dict({"rate": 0.1, "color": "red"})
        with pytest.raises(ConfigError):
            FaultSpec.from_dict({"seed": 3})

    def test_kinds_normalised_to_canonical_order(self):
        spec = FaultSpec(
            rate=0.1, kinds=(FaultKind.LINK_DOWN, FaultKind.TILE_DEAD)
        )
        assert spec.kinds == (FaultKind.TILE_DEAD, FaultKind.LINK_DOWN)

    def test_rng_name_is_seed_scoped(self):
        assert FaultSpec(rate=0.1, seed=7).rng_name != (
            FaultSpec(rate=0.1, seed=8).rng_name
        )


class TestSampling:
    def test_same_seed_same_mask(self):
        spec = FaultSpec(rate=0.05, seed=7, kinds=ALL_KINDS)
        a = FaultModel(spec).sample(node())
        b = sample_faults(spec, node())
        assert a == b

    def test_different_seeds_differ(self):
        masks = {
            sample_faults(
                FaultSpec(rate=0.05, seed=s, kinds=ALL_KINDS), node()
            ).faults
            for s in range(4)
        }
        assert len(masks) > 1

    def test_rate_zero_is_healthy(self):
        mask = sample_faults(FaultSpec(rate=0.0), node())
        assert mask.fault_count == 0
        assert not mask.degraded

    def test_dict_spec_accepted(self):
        mask = sample_faults({"rate": 0.05, "seed": 7}, node())
        assert mask == sample_faults(
            FaultSpec(rate=0.05, seed=7), node()
        )

    def test_sites_name_real_hardware(self):
        mask = sample_faults(
            FaultSpec(rate=0.2, seed=1, kinds=ALL_KINDS), node()
        )
        assert mask.fault_count > 0
        for fault in mask.faults:
            assert fault.site.startswith(
                ("conv/", "fc/", "arc/", "ring/", "dma")
            )

    def test_describe_counts_kinds(self):
        mask = sample_faults(
            FaultSpec(rate=0.1, seed=3, kinds=ALL_KINDS), node()
        )
        text = mask.describe()
        assert f"{mask.fault_count} fault" in text


class TestFaultAwareMapping:
    def test_no_fault_mapping_unchanged(self):
        net = zoo.alexnet()
        plain = map_network(net, node())
        masked = map_network(
            net, node(), faults=sample_faults(FaultSpec(rate=0.0), node())
        )
        assert plain.conv_columns_per_copy == masked.conv_columns_per_copy
        assert plain.copies == masked.copies
        assert not masked.degraded

    def test_dead_tiles_are_remapped(self):
        net = zoo.alexnet()
        mask = sample_faults(FaultSpec(rate=0.05, seed=7), node())
        assert mask.dead_conv_columns
        mapping = map_network(net, node(), faults=mask)
        assert mapping.degraded
        assert mapping.remapped_columns >= len(mask.dead_conv_columns)
        for alloc in mapping.conv_allocations.values():
            assert not set(alloc.assigned_columns) & mask.dead_conv_columns

    def test_remap_deterministic(self):
        net = zoo.vgg_e()
        mask = sample_faults(FaultSpec(rate=0.05, seed=7), node())
        a = map_network(net, node(), faults=mask).describe()
        b = map_network(net, node(), faults=mask).describe()
        assert a == b

    def test_capacity_exhaustion_raises_unmappable(self):
        net = zoo.alexnet()
        mask = sample_faults(FaultSpec(rate=0.93, seed=3), node())
        with pytest.raises(UnmappableError, match="capacity exhausted"):
            map_network(net, node(), faults=mask)

    def test_slow_tiles_derate_allocations(self):
        net = zoo.alexnet()
        mask = sample_faults(
            FaultSpec(
                rate=0.3, seed=5, kinds=(FaultKind.TILE_SLOW,),
                slow_factor=0.5,
            ),
            node(),
        )
        assert mask.slow_conv_columns
        mapping = map_network(net, node(), faults=mask)
        derates = [a.derate for a in mapping.conv_allocations.values()]
        assert min(derates) == pytest.approx(0.5)


class TestDegradedPerformance:
    def test_dead_tiles_lower_throughput(self):
        net = zoo.vgg_e()
        base = simulate(net, node())
        mask = sample_faults(FaultSpec(rate=0.05, seed=7), node())
        hurt = simulate(net, node(), faults=mask)
        assert (
            hurt.training_images_per_s < base.training_images_per_s
        )

    def test_slow_tiles_lower_throughput(self):
        net = zoo.alexnet()
        base = simulate(net, node())
        mask = sample_faults(
            FaultSpec(rate=0.3, seed=5, kinds=(FaultKind.TILE_SLOW,)),
            node(),
        )
        hurt = simulate(net, node(), faults=mask)
        assert (
            hurt.training_images_per_s < base.training_images_per_s
        )

    def test_ring_partition_raises(self):
        with pytest.raises(SimulationError, match="ring partitioned"):
            ring_allreduce_cycles(1e6, 4, 1e9, 1e9, down_links=2)

    def test_one_down_ring_link_costs_more(self):
        healthy = ring_allreduce_cycles(1e6, 4, 1e9, 1e9)
        degraded = ring_allreduce_cycles(1e6, 4, 1e9, 1e9, down_links=1)
        assert degraded > healthy


class TestDegradedTopology:
    def test_down_links_removed(self):
        n = node()
        mask = sample_faults(
            FaultSpec(rate=0.2, seed=1, kinds=(FaultKind.LINK_DOWN,)), n
        )
        assert mask.down_arcs or mask.down_ring
        graph = degraded_topology(n, mask)
        healthy_edges = len(degraded_topology(n, sample_faults(
            FaultSpec(rate=0.0), n)).edges)
        assert len(graph.edges) == healthy_edges - len(mask.down_arcs) - len(
            mask.down_ring
        )

    def test_reroute_penalties_at_least_one(self):
        n = node()
        mask = sample_faults(
            FaultSpec(rate=0.2, seed=1, kinds=(FaultKind.LINK_DOWN,)), n
        )
        penalties = reroute_penalties(n, mask)
        assert all(v >= 1.0 for v in penalties.values())


def spin_machine():
    m = Machine(conv_chip(), 3, 2)
    prog = assemble(
        """
        loop:
        BRANCH offset=@loop
        HALT
        """,
        tile="spin",
    )
    m.load_program(prog)
    return m


class TestWatchdog:
    def test_cycle_budget_raises_timeout(self):
        with pytest.raises(SimulationTimeout) as exc:
            Engine(spin_machine(), max_rounds=50).run()
        assert exc.value.snapshot
        assert any(t["tile"] == "spin" for t in exc.value.snapshot)

    def test_wall_clock_raises_timeout(self):
        with pytest.raises(SimulationTimeout, match="wall-clock") as exc:
            Engine(
                spin_machine(), max_rounds=10**9, wall_clock_limit=0.05
            ).run()
        assert any(t["tile"] == "spin" for t in exc.value.snapshot)

    def test_timeout_is_simulation_error(self):
        # Callers catching SimulationError keep working.
        assert issubclass(SimulationTimeout, SimulationError)

    def test_snapshot_sorted_and_structured(self):
        with pytest.raises(SimulationTimeout) as exc:
            Engine(spin_machine(), max_rounds=50).run()
        tiles = [t["tile"] for t in exc.value.snapshot]
        assert tiles == sorted(tiles)
        for entry in exc.value.snapshot:
            assert {"tile", "pc", "cycles", "halted"} <= set(entry)


def dma_machine():
    m = Machine(conv_chip(), 3, 2)
    prog = assemble(
        """
        DMALOAD src_addr=0, src_port=65535, dst_addr=0, dst_port=0, size=16, is_accum=0
        HALT
        """,
        tile="loader",
    )
    m.load_program(prog)
    return m


class _FlipFaults:
    """Duck-typed fault mask carrying only a DMA flip rate."""

    def __init__(self, rate, seed=0):
        self.dma_flip_rate = rate
        self.spec = FaultSpec(rate=0.5, seed=seed)


class TestDmaBitFlips:
    def run_engine(self, faults):
        m = dma_machine()
        engine = Engine(m, faults=faults)
        engine.external[0:16] = np.arange(16, dtype=np.float32) + 1.0
        engine.run()
        return engine, m.mem_tile(0).read(0, 16)

    def test_no_faults_no_flips(self):
        engine, data = self.run_engine(None)
        assert engine.dma_flips == 0
        assert np.all(data > 0)

    def test_rate_one_flips_exactly_one_word_per_transfer(self):
        engine, data = self.run_engine(_FlipFaults(1.0))
        assert engine.dma_flips == 1
        assert int(np.sum(data < 0)) == 1

    def test_flips_deterministic(self):
        _, first = self.run_engine(_FlipFaults(1.0, seed=3))
        _, second = self.run_engine(_FlipFaults(1.0, seed=3))
        assert np.array_equal(first, second)


class TestFaultFingerprint:
    def test_spec_changes_digest(self):
        net = zoo.alexnet()
        n = node()
        plain = compile_digest(net, n, artifact="mapping")
        spec = FaultSpec(rate=0.02, seed=7)
        faulted = compile_digest(net, n, artifact="mapping", faults=spec)
        reseeded = compile_digest(
            net, n, artifact="mapping", faults=FaultSpec(rate=0.02, seed=8)
        )
        assert len({plain, faulted, reseeded}) == 3

    def test_equal_specs_share_digest(self):
        net = zoo.alexnet()
        n = node()
        a = compile_digest(
            net, n, artifact="mapping", faults=FaultSpec(rate=0.02, seed=7)
        )
        b = compile_digest(
            net, n, artifact="mapping", faults=FaultSpec(rate=0.02, seed=7)
        )
        assert a == b
