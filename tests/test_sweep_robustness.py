"""Robustness tests for the sweep runner and the disk cache: poison-job
quarantine, retry/fail-fast semantics, corrupt-entry self-healing and
fault-sweep determinism across worker counts."""

import json
import pickle

import pytest

from repro.bench.export import write_sweep_json
from repro.errors import SweepError
from repro.faults import FaultSpec
from repro.sweep import (
    CompileCache,
    SweepJob,
    cached_simulation,
    expand_jobs,
    run_sweep,
    set_cache,
    simulation_digest,
)
from repro.sweep.cache import DISK_FORMAT_VERSION
from repro.sweep.runner import SweepResult
from repro.telemetry.core import capture

TINY = ("TinyCNN", "TinyMLP")


@pytest.fixture(autouse=True)
def fresh_cache():
    previous = set_cache(CompileCache())
    yield
    set_cache(previous)


def poison_job():
    """A job that fails inside the worker, not at expansion time."""
    return SweepJob(network="NoSuchNet", preset="sp")


class TestQuarantine:
    def test_poison_job_becomes_failed_row(self):
        jobs = expand_jobs(TINY) + [poison_job()]
        report = run_sweep(jobs, retries=0)
        assert len(report.results) == 3
        ok = [r for r in report.results if not r.failed]
        assert len(ok) == 2
        failed = report.failures[0]
        assert failed.status == "failed"
        assert failed.network == "NoSuchNet"
        assert "Traceback" in failed.error
        assert failed.train_images_per_s == 0.0

    def test_failed_rows_identical_across_worker_counts(self):
        jobs = expand_jobs(TINY) + [poison_job()]
        serial = run_sweep(jobs, workers=1, retries=0)
        pooled = run_sweep(jobs, workers=2, retries=0)
        # cache_hit is informational and excluded from exported rows;
        # everything exported must match bit for bit.
        assert [r.to_row() for r in serial.results] == [
            r.to_row() for r in pooled.results
        ]

    def test_fail_fast_raises(self):
        jobs = [poison_job()] + expand_jobs(TINY)
        with pytest.raises(SweepError, match="fail-fast"):
            run_sweep(jobs, retries=0, fail_fast=True)

    def test_retries_still_quarantine_persistent_failures(self):
        report = run_sweep([poison_job()], retries=2, backoff=0.0)
        assert report.failures[0].status == "failed"

    def test_failed_jobs_counted_in_telemetry(self):
        with capture() as tel:
            run_sweep([poison_job()], retries=0)
        assert tel.counters.get("sweep", "failed_jobs") == 1

    def test_export_carries_status_and_error(self, tmp_path):
        report = run_sweep(expand_jobs(("TinyMLP",)) + [poison_job()],
                           retries=0)
        path = write_sweep_json(report.results, tmp_path / "rows.json")
        rows = json.loads(path.read_text())
        assert [r["status"] for r in rows] == ["ok", "failed"]
        assert "Traceback" in rows[1]["error"]
        assert set(SweepResult.EXPORT_FIELDS) <= set(rows[0])


class TestFaultSweep:
    def test_fault_spec_threads_through_jobs(self):
        spec = FaultSpec(rate=0.05, seed=3)
        jobs = expand_jobs(TINY, faults=spec)
        assert all(j.faults == spec for j in jobs)
        assert all("fault0.05s3" in j.label for j in jobs)

    def test_fault_sweep_deterministic_across_workers(self, tmp_path):
        jobs = expand_jobs(TINY, faults=FaultSpec(rate=0.05, seed=3))
        serial = run_sweep(jobs, workers=1)
        set_cache(CompileCache())  # drop warm entries before the rerun
        pooled = run_sweep(jobs, workers=4)
        a = write_sweep_json(serial.results, tmp_path / "serial.json")
        b = write_sweep_json(pooled.results, tmp_path / "pooled.json")
        assert a.read_bytes() == b.read_bytes()

    def test_different_fault_seeds_different_digests(self):
        a = expand_jobs(TINY, faults=FaultSpec(rate=0.05, seed=3))
        b = expand_jobs(TINY, faults=FaultSpec(rate=0.05, seed=4))
        ra = run_sweep(a)
        rb = run_sweep(b)
        assert {r.digest for r in ra.results}.isdisjoint(
            {r.digest for r in rb.results}
        )


class TestCorruptCache:
    def entry_path(self, cache, net, node_name="sp"):
        from repro.arch.presets import load_preset

        node = load_preset(node_name)
        digest = simulation_digest(net, node)
        return cache._disk_path("simulation", digest), node, digest

    def test_truncated_pickle_evicted_and_recomputed(self, tmp_path):
        from repro.dnn.zoo.tiny import tiny_mlp

        cache = CompileCache(tmp_path)
        net = tiny_mlp()
        path, node, _ = self.entry_path(cache, net)
        cached_simulation(net, node, cache=cache)
        assert path.exists()
        path.write_bytes(path.read_bytes()[:20])  # truncate

        fresh = CompileCache(tmp_path)  # cold memory layer
        with capture() as tel:
            result = cached_simulation(net, node, cache=fresh)
        assert result.training_images_per_s > 0
        assert fresh.stats["corrupt"] == 1
        assert tel.counters.get("cache", "corrupt") == 1

    def test_stale_format_version_self_invalidates(self, tmp_path):
        from repro.dnn.zoo.tiny import tiny_mlp

        cache = CompileCache(tmp_path)
        net = tiny_mlp()
        path, node, digest = self.entry_path(cache, net)
        good = cached_simulation(net, node, cache=cache)
        entry = {
            "version": DISK_FORMAT_VERSION - 1,
            "kind": "simulation",
            "digest": digest,
            "artifact": good,
        }
        path.write_bytes(pickle.dumps(entry))

        fresh = CompileCache(tmp_path)
        cached_simulation(net, node, cache=fresh)
        assert fresh.stats["corrupt"] == 1
        # The rebuilt entry replaced the stale one on disk.
        assert pickle.loads(path.read_bytes())["version"] == (
            DISK_FORMAT_VERSION
        )

    def test_digest_mismatch_evicted(self, tmp_path):
        from repro.dnn.zoo.tiny import tiny_mlp

        cache = CompileCache(tmp_path)
        net = tiny_mlp()
        path, node, digest = self.entry_path(cache, net)
        good = cached_simulation(net, node, cache=cache)
        entry = {
            "version": DISK_FORMAT_VERSION,
            "kind": "simulation",
            "digest": "not-the-digest",
            "artifact": good,
        }
        path.write_bytes(pickle.dumps(entry))

        fresh = CompileCache(tmp_path)
        cached_simulation(net, node, cache=fresh)
        assert fresh.stats["corrupt"] == 1

    def test_corrupt_entry_never_raises(self, tmp_path):
        from repro.dnn.zoo.tiny import tiny_mlp

        cache = CompileCache(tmp_path)
        net = tiny_mlp()
        path, node, _ = self.entry_path(cache, net)
        cached_simulation(net, node, cache=cache)
        path.write_bytes(b"garbage, not a pickle")
        fresh = CompileCache(tmp_path)
        assert cached_simulation(net, node, cache=fresh) is not None


class TestRetrySemantics:
    """Regression: the retry loop used to re-attempt *every* failure,
    including typed :class:`ReproError` domain failures that are
    deterministic and fail identically on each attempt — burning
    ``retries`` wall-clock sleeps for nothing.  Typed failures must now
    quarantine immediately; only unexpected crashes retry."""

    def typed_failure_job(self):
        """Fails with SimulationError (a ReproError) in the worker:
        the network exists, the minibatch is invalid."""
        return SweepJob(network="TinyMLP", preset="sp", minibatch=0)

    def test_typed_failures_quarantine_without_retrying(self):
        sleeps = []
        report = run_sweep(
            [self.typed_failure_job()], retries=5, backoff=0.1,
            sleep=sleeps.append,
        )
        failed = report.failures[0]
        assert failed.status == "failed"
        assert "SimulationError" in failed.error
        assert sleeps == []  # deterministic failure: zero backoff sleeps

    def test_unexpected_crashes_retry_with_backoff(self):
        sleeps = []
        report = run_sweep(
            [poison_job()], retries=2, backoff=0.1,
            sleep=sleeps.append,
        )
        assert report.failures[0].status == "failed"
        # One sleep per re-attempt, exponential: 0.1 * 2**attempt.
        assert sleeps == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_typed_failure_row_survives_alongside_ok_rows(self):
        jobs = expand_jobs(("TinyCNN",)) + [self.typed_failure_job()]
        report = run_sweep(jobs, retries=3, sleep=lambda _s: None)
        assert [r.status for r in report.results] == ["ok", "failed"]
