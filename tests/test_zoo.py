"""The benchmark zoo reproduces the paper's Fig 15 table."""

import pytest

from repro.dnn import zoo
from repro.dnn.layers import LayerKind

#: Relative tolerance for neurons/weights/connections vs Fig 15.  The
#: paper's exact input crops and layer variants are not fully specified;
#: GoogLeNet's connection count is the one documented outlier (the
#: paper's 2.44B vs the standard model's ~1.6B multiply-accumulates).
TOLERANCE = 0.20
CONNECTION_OVERRIDES = {"GoogLeNet": 0.40}
# GoogLeNet neuron counts depend on whether the 5x5-reduce / pool-proj
# intermediate outputs are counted; ours counts every CONV output.
NEURON_OVERRIDES = {"GoogLeNet": 0.25}


@pytest.fixture(scope="module")
def suite():
    return zoo.all_benchmarks()


class TestFig15:
    @pytest.mark.parametrize("name", list(zoo.BENCHMARKS))
    def test_neurons(self, suite, name):
        row = zoo.PAPER_FIG15[name]
        tol = NEURON_OVERRIDES.get(name, TOLERANCE)
        got = suite[name].neuron_count / 1e6
        assert got == pytest.approx(row.neurons_m, rel=tol)

    @pytest.mark.parametrize("name", list(zoo.BENCHMARKS))
    def test_weights(self, suite, name):
        row = zoo.PAPER_FIG15[name]
        got = suite[name].weight_count / 1e6
        assert got == pytest.approx(row.weights_m, rel=0.05)

    @pytest.mark.parametrize("name", list(zoo.BENCHMARKS))
    def test_connections(self, suite, name):
        row = zoo.PAPER_FIG15[name]
        tol = CONNECTION_OVERRIDES.get(name, TOLERANCE)
        got = suite[name].connection_count / 1e9
        assert got == pytest.approx(row.connections_b, rel=tol)

    @pytest.mark.parametrize("name", list(zoo.BENCHMARKS))
    def test_weighted_layer_counts(self, suite, name):
        """CONV+FC layer counts match the paper's bookkeeping, allowing
        for inception modules / residual projections counted as units."""
        row = zoo.PAPER_FIG15[name]
        net = suite[name]
        counts = net.layer_counts()
        fc = counts.get(LayerKind.FC, 0)
        assert fc == row.fc_layers
        conv = counts.get(LayerKind.CONV, 0)
        # The paper counts inception modules as single CONV layers and
        # omits projection shortcuts, so our graph has >= its count.
        assert conv >= row.conv_layers


class TestZooApi:
    def test_load_by_name(self):
        net = zoo.load("AlexNet")
        assert net.name == "AlexNet"

    def test_load_unknown(self):
        with pytest.raises(KeyError):
            zoo.load("LeNet-99")

    def test_factories_are_deterministic(self):
        a, b = zoo.alexnet(), zoo.alexnet()
        assert a.weight_count == b.weight_count
        assert [n.name for n in a] == [n.name for n in b]

    def test_suite_order_matches_paper(self):
        assert list(zoo.BENCHMARKS)[0] == "AlexNet"
        assert list(zoo.BENCHMARKS)[-1] == "VGG-E"
        assert len(zoo.BENCHMARKS) == 11

    def test_custom_class_count(self):
        net = zoo.alexnet(num_classes=100)
        assert net.output.output_shape.count == 100


class TestTinyNetworks:
    def test_tiny_cnn_shapes(self):
        net = zoo.tiny_cnn(num_classes=7, in_size=16)
        assert net.output.output_shape.count == 7
        assert net.input.output_shape.height == 16

    def test_tiny_mlp_is_fc_only(self):
        net = zoo.tiny_mlp()
        kinds = {n.kind for n in net}
        assert LayerKind.CONV not in kinds


class TestExtras:
    def test_extras_loadable(self):
        for name in zoo.EXTRAS:
            net = zoo.load(name)
            assert len(net) > 2

    def test_extras_not_in_benchmark_suite(self):
        assert not set(zoo.EXTRAS) & set(zoo.BENCHMARKS)

    def test_error_lists_extras(self):
        with pytest.raises(KeyError, match="LeNet-5"):
            zoo.load("nope")


class TestNiN:
    def test_parameter_count_ballpark(self):
        """NiN is famously compact: ~7.6M parameters, no FC layers."""
        net = zoo.nin()
        assert 6e6 < net.weight_count < 10e6
        assert not net.layers_of_kind(LayerKind.FC)

    def test_head_is_global_pooling(self):
        net = zoo.nin(num_classes=100)
        assert net.output.kind is LayerKind.SAMP
        assert net.output.output_shape.count == 100

    def test_maps_without_fc_side(self):
        from repro.arch import single_precision_node
        from repro.compiler import map_network

        mapping = map_network(zoo.nin(), single_precision_node())
        assert not mapping.fc_allocations
        assert mapping.conv_allocations

    def test_simulates(self):
        from repro.arch import single_precision_node
        from repro.sim import simulate

        result = simulate(zoo.nin(), single_precision_node())
        assert result.training_images_per_s > 100


class TestEngineProxies:
    """Engine-scale proxies preserve topology while shrinking capacity."""

    def test_every_benchmark_has_engine_coverage(self):
        """Each Fig 15 network either fits the engine or has a proxy,
        so `repro validate` never skips a benchmark."""
        from repro.dnn.zoo.engine_proxies import PROXY_PARAMS, engine_scale
        from repro.sim.validation import ENGINE_WEIGHT_LIMIT

        for name in zoo.BENCHMARKS:
            net = zoo.load(name)
            if net.weight_count > ENGINE_WEIGHT_LIMIT:
                assert name in PROXY_PARAMS, name
                run_net, note = engine_scale(net, ENGINE_WEIGHT_LIMIT)
                assert run_net is not None
                assert run_net.weight_count <= ENGINE_WEIGHT_LIMIT, name
                assert "proxy" in note

    def test_proxy_preserves_topology(self):
        from repro.dnn.zoo.engine_proxies import engine_proxy

        parent = zoo.load("GoogLeNet")
        proxy = engine_proxy("GoogLeNet")
        assert len(proxy) == len(parent)
        for p_node, q_node in zip(parent, proxy):
            assert p_node.name == q_node.name
            assert p_node.kind is q_node.kind
            assert list(p_node.input_names) == list(q_node.input_names)

    def test_proxy_keeps_grouped_convs_divisible(self):
        from repro.dnn.layers import ConvSpec
        from repro.dnn.zoo.engine_proxies import engine_proxy

        proxy = engine_proxy("AlexNet")
        for node in proxy:
            if isinstance(node.spec, ConvSpec) and node.spec.groups > 1:
                assert node.spec.out_features % node.spec.groups == 0

    def test_connection_table_conv_rejected(self):
        from repro.dnn.zoo.engine_proxies import shrink_for_engine
        from repro.errors import MappingError

        with pytest.raises(MappingError, match="connection-table"):
            shrink_for_engine(zoo.lenet5(), 2, 16)
