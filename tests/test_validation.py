"""Cross-validation: analytical model vs engine cycle counts."""

import pytest

from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation, PoolMode
from repro.dnn.zoo import tiny_cnn, tiny_mlp
from repro.sim.validation import (
    ValidationRow,
    analytical_forward_cycles,
    cross_validate,
    rank_agreement,
)


def wide_cnn():
    b = NetworkBuilder("WideCNN")
    b.input(3, 16)
    b.conv(12, kernel=3, pad=1)
    b.pool(2, mode=PoolMode.AVG)
    b.conv(16, kernel=3, pad=1)
    b.fc(6, activation=Activation.SOFTMAX)
    return b.build()


@pytest.fixture(scope="module")
def rows():
    nets = {
        "mlp": tiny_mlp(num_classes=4, in_features=8, hidden=12),
        "cnn8": tiny_cnn(num_classes=4, in_size=8),
        "cnn16": tiny_cnn(num_classes=4, in_size=16),
        "wide": wide_cnn(),
    }
    return cross_validate(nets, rows=2)


class TestCrossValidation:
    def test_models_rank_workloads_identically(self, rows):
        assert rank_agreement(rows) == 1.0

    def test_compute_dominated_ratios_near_one(self, rows):
        """For networks with real compute, the engine's measured cycles
        land within 3x of the analytical prediction (the tiny MLP is
        per-instruction-overhead dominated and excluded)."""
        for row in rows:
            if row.analytical_cycles > 100:
                assert 0.3 < row.ratio < 3.0, row.network

    def test_engine_never_free(self, rows):
        for row in rows:
            assert row.engine_cycles > 0
            assert row.instructions > 0

    def test_analytical_cycles_scale_with_input(self):
        small = analytical_forward_cycles(
            tiny_cnn(num_classes=4, in_size=8), rows=2
        )
        large = analytical_forward_cycles(
            tiny_cnn(num_classes=4, in_size=16), rows=2
        )
        assert large > 2 * small

    def test_rank_agreement_degenerate(self):
        assert rank_agreement([]) == 1.0
        assert rank_agreement([ValidationRow("x", 1, 1.0, 1)]) == 1.0
