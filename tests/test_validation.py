"""Cross-validation: analytical model vs engine cycle counts."""

import json

import pytest

from repro.bench.export import write_validation_json
from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation, PoolMode
from repro.dnn.zoo import tiny_cnn, tiny_mlp
from repro.errors import ValidationError
from repro.sim.validation import (
    BANDS,
    DEFAULT_BAND,
    OVERHEAD_BAND,
    OVERHEAD_CYCLE_FLOOR,
    ValidationReport,
    ValidationRow,
    _skip,
    analytical_forward_cycles,
    band_for,
    cross_validate,
    rank_agreement,
    validate_zoo,
)


def wide_cnn():
    b = NetworkBuilder("WideCNN")
    b.input(3, 16)
    b.conv(12, kernel=3, pad=1)
    b.pool(2, mode=PoolMode.AVG)
    b.conv(16, kernel=3, pad=1)
    b.fc(6, activation=Activation.SOFTMAX)
    return b.build()


@pytest.fixture(scope="module")
def rows():
    nets = {
        "mlp": tiny_mlp(num_classes=4, in_features=8, hidden=12),
        "cnn8": tiny_cnn(num_classes=4, in_size=8),
        "cnn16": tiny_cnn(num_classes=4, in_size=16),
        "wide": wide_cnn(),
    }
    return cross_validate(nets, rows=2)


class TestCrossValidation:
    def test_models_rank_workloads_identically(self, rows):
        assert rank_agreement(rows) == 1.0

    def test_compute_dominated_ratios_near_one(self, rows):
        """For networks with real compute, the engine's measured cycles
        land within 3x of the analytical prediction (the tiny MLP is
        per-instruction-overhead dominated and excluded)."""
        for row in rows:
            if row.analytical_cycles > 100:
                assert 0.3 < row.ratio < 3.0, row.network

    def test_engine_never_free(self, rows):
        for row in rows:
            assert row.engine_cycles > 0
            assert row.instructions > 0

    def test_analytical_cycles_scale_with_input(self):
        small = analytical_forward_cycles(
            tiny_cnn(num_classes=4, in_size=8), rows=2
        )
        large = analytical_forward_cycles(
            tiny_cnn(num_classes=4, in_size=16), rows=2
        )
        assert large > 2 * small

    def test_rank_agreement_degenerate(self):
        assert rank_agreement([]) == 1.0
        assert rank_agreement([ValidationRow("x", 1, 1.0, 1)]) == 1.0


def _row(name, engine, analytical, **kw):
    return ValidationRow(name, engine, analytical, 1, **kw)


class TestGuardedRatio:
    def test_normal_ratio(self):
        assert _row("a", 300, 100.0).ratio == pytest.approx(3.0)

    def test_zero_analytical_with_engine_work_is_inf(self):
        """The old code divided by zero here."""
        assert _row("a", 5, 0.0).ratio == float("inf")

    def test_both_zero_agrees(self):
        assert _row("a", 0, 0.0).ratio == 1.0


class TestRankAgreementTies:
    def test_tie_in_both_models_concords(self):
        rows = [_row("a", 10, 5.0), _row("b", 10, 5.0)]
        assert rank_agreement(rows) == 1.0

    def test_tie_against_strict_order_discords(self):
        """The old `<=`-both-sides rule scored this pair concordant in
        one direction and discordant in the other; the sign rule is
        symmetric — a tie never agrees with a strict ordering."""
        tied_engine = [_row("a", 10, 5.0), _row("b", 10, 9.0)]
        assert rank_agreement(tied_engine) == 0.0
        assert rank_agreement(list(reversed(tied_engine))) == 0.0
        tied_model = [_row("a", 10, 5.0), _row("b", 12, 5.0)]
        assert rank_agreement(tied_model) == 0.0
        assert rank_agreement(list(reversed(tied_model))) == 0.0

    def test_opposite_order_discords(self):
        rows = [_row("a", 10, 9.0), _row("b", 20, 5.0)]
        assert rank_agreement(rows) == 0.0


class TestToleranceBands:
    def test_overhead_floor_widens_band(self):
        assert band_for("anything", OVERHEAD_CYCLE_FLOOR) is OVERHEAD_BAND
        assert (
            band_for("anything", OVERHEAD_CYCLE_FLOOR + 1) is DEFAULT_BAND
        )

    def test_pinned_override_wins(self):
        assert "LeNet-5" in BANDS
        assert band_for("LeNet-5", 1e6) is BANDS["LeNet-5"]
        assert band_for("LeNet-5", 1.0) is BANDS["LeNet-5"]

    def test_band_is_inclusive(self):
        band = DEFAULT_BAND
        assert band.contains(band.low) and band.contains(band.high)
        assert not band.contains(band.high * 1.01)
        assert "[" in band.describe()


def _report(rows, rank=1.0, **kw):
    return ValidationReport(rows=rows, rank=rank, **kw)


class TestValidationReport:
    def test_clean_report_passes(self):
        report = _report([_row("a", 150, 120.0)])
        assert report.passed and report.violations() == []
        report.raise_on_failure()  # no-op

    def test_band_violation_fails(self):
        report = _report([_row("a", 10_000, 120.0)])
        assert not report.passed
        assert "tolerance band" in report.violations()[0]
        with pytest.raises(ValidationError) as err:
            report.raise_on_failure()
        assert list(err.value.violations) == report.violations()

    def test_output_error_violation(self):
        report = _report(
            [_row("a", 150, 120.0, max_abs_error=0.5)]
        )
        assert any("deviates" in v for v in report.violations())

    def test_nan_output_error_violates(self):
        report = _report(
            [_row("a", 150, 120.0, max_abs_error=float("nan"))]
        )
        assert not report.passed

    def test_low_rank_fails(self):
        report = _report([_row("a", 150, 120.0)], rank=0.5)
        assert any("rank agreement" in v for v in report.violations())

    def test_fused_mismatch_fails(self):
        report = _report(
            [_row("a", 150, 120.0, fused_identical=False)]
        )
        assert any("bit-identical" in v for v in report.violations())

    def test_no_ok_rows_fails(self):
        skipped = ValidationRow(
            "a", 0, 0.0, 0, status="skipped", reason="too big"
        )
        report = _report([skipped])
        assert not report.passed
        assert "nothing validated" in report.violations()[0]

    def test_skipped_rows_not_gated(self):
        rows = [
            _row("a", 150, 120.0),
            ValidationRow("b", 0, 0.0, 0, status="skipped", reason="x"),
        ]
        assert _report(rows).passed

    def test_to_dict_round_trips_through_json(self, tmp_path):
        report = _report([
            _row("a", 150, 120.0),
            ValidationRow("b", 7, 0.0, 1),  # inf ratio -> null
            ValidationRow("c", 0, 0.0, 0, status="skipped", reason="big"),
        ])
        path = write_validation_json(report, tmp_path / "v.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1
        assert payload["passed"] is False  # b's inf ratio violates
        by_name = {r["network"]: r for r in payload["rows"]}
        assert by_name["a"]["ratio"] == pytest.approx(1.25)
        assert by_name["b"]["ratio"] is None
        assert by_name["c"]["band_low"] is None
        assert by_name["c"]["reason"] == "big"


class TestValidateZoo:
    @pytest.fixture(scope="class")
    def report(self):
        return validate_zoo(
            ["TinyCNN-8", "WideCNN", "tinymlp"], speedup=False
        )

    def test_explicit_names_resolve_canonical(self, report):
        """Requested names land under their canonical zoo spelling."""
        assert [r.network for r in report.rows] == [
            "TinyCNN-8", "WideCNN", "TinyMLP",
        ]
        assert all(r.status == "ok" for r in report.rows)

    def test_gate_passes_on_small_nets(self, report):
        assert report.passed, report.violations()
        assert 0.0 <= report.rank <= 1.0

    def test_outputs_match_reference(self, report):
        for row in report.rows:
            assert row.max_abs_error <= report.max_output_error

    def test_fused_path_validated(self, report):
        for row in report.rows:
            assert row.fused_identical
            assert 0 < row.fused_cycles <= row.engine_cycles

    def test_speedup_disabled(self, report):
        assert report.speedup is None

    def test_oversize_network_runs_its_proxy(self):
        """Networks above ENGINE_WEIGHT_LIMIT engine-execute their
        registered proxy under the canonical name instead of skipping."""
        report = validate_zoo(["AlexNet"], speedup=False)
        (row,) = report.rows
        assert row.network == "AlexNet"
        assert row.status == "ok"
        assert "engine proxy" in row.reason
        assert row.fused_identical
        assert report.passed, report.violations()

    def test_alias_duplicates_deduped(self):
        """`vgg16` beside `VGG-D` is one network, hence one row."""
        report = validate_zoo(["vgg16", "VGG-D"], speedup=False)
        assert [r.network for r in report.rows] == ["VGG-D"]


class TestSkipReason:
    def test_multi_line_reason_collapses_to_one_line(self):
        row = _skip(
            "x", "scope failure:\n  op conv5 uses frobnication\n  more"
        )
        assert "\n" not in row.reason
        assert "conv5" in row.reason

    def test_reason_is_bounded(self):
        row = _skip("x", "word " * 200)
        assert len(row.reason) <= 200
        assert row.reason.endswith("...")
