"""Unit tests for the performance simulator's internal aggregations."""

import pytest

from repro.arch import single_precision_node
from repro.compiler import map_network
from repro.dnn import zoo
from repro.sim.perf import (
    _array_flops_per_image,
    _chip_boundary_bytes,
    _fc_feature_bytes,
    _first_fc_input_bytes,
    _merge_costs,
    _conv_stage_reports,
    _span_crossings,
    _throughput,
)


@pytest.fixture(scope="module")
def node():
    return single_precision_node()


@pytest.fixture(scope="module")
def alexnet_mapping(node):
    return map_network(zoo.alexnet(), node)


@pytest.fixture(scope="module")
def vggd_mapping(node):
    return map_network(zoo.vgg_d(), node)


class TestSpanCrossings:
    """Pins the boundary-crossing count, including the exact-landing
    case the old ``(position - 1) // span`` test missed."""

    def test_unit_ending_exactly_on_boundary_crosses(self):
        # Unit 1 ends at column 16; unit 2 reads across the edge.
        assert _span_crossings([8, 8, 8], 16) == [1]

    def test_internal_straddle_crosses(self):
        assert _span_crossings([8, 9, 7], 16) == [1]

    def test_trailing_unit_on_boundary_is_free(self):
        # No consumer beyond the last unit: nothing crosses.
        assert _span_crossings([16], 16) == []
        assert _span_crossings([8, 8], 16) == []

    def test_two_full_spans(self):
        assert _span_crossings([16, 16], 16) == [0]

    def test_sequence_within_one_span(self):
        assert _span_crossings([4, 4], 16) == []

    def test_wide_unit_straddling_twice_counts_once(self):
        assert _span_crossings([8, 33, 7], 16) == [1]

    def test_degenerate_span(self):
        assert _span_crossings([8, 8], 0) == []


class TestTrafficHelpers:
    def test_single_chip_has_no_boundary_traffic(self, alexnet_mapping):
        chip_cols = alexnet_mapping.node.cluster.conv_chip.cols
        assert alexnet_mapping.conv_columns_per_copy <= chip_cols
        assert _chip_boundary_bytes(alexnet_mapping, chip_cols) == 0.0

    def test_multi_chip_crosses_boundaries(self, vggd_mapping):
        chip_cols = vggd_mapping.node.cluster.conv_chip.cols
        assert vggd_mapping.conv_chips_per_copy > 1
        assert _chip_boundary_bytes(vggd_mapping, chip_cols) > 0.0

    def test_boundary_bytes_shrink_with_span(self, vggd_mapping):
        chip_cols = vggd_mapping.node.cluster.conv_chip.cols
        per_chip = _chip_boundary_bytes(vggd_mapping, chip_cols)
        per_cluster = _chip_boundary_bytes(vggd_mapping, chip_cols * 4)
        assert per_cluster <= per_chip

    def test_zero_span_is_free(self, alexnet_mapping):
        assert _chip_boundary_bytes(alexnet_mapping, 0) == 0.0

    def test_fc_input_bytes(self, alexnet_mapping):
        # AlexNet fc6 consumes 256*6*6 floats.
        assert _first_fc_input_bytes(alexnet_mapping) == 256 * 36 * 4

    def test_fc_feature_bytes_cover_all_fc_layers(self, alexnet_mapping):
        total = _fc_feature_bytes(alexnet_mapping)
        expected = (
            (9216 + 4096) + (4096 + 4096) + (4096 + 1000)
        ) * 4
        assert total == expected


class TestFlopsAccounting:
    def test_training_array_flops_about_3x_eval(self, alexnet_mapping):
        train = _array_flops_per_image(alexnet_mapping, training=True)
        evaln = _array_flops_per_image(alexnet_mapping, training=False)
        assert 2.5 < train / evaln < 3.5

    def test_array_flops_near_2x_connections(self, alexnet_mapping):
        evaln = _array_flops_per_image(alexnet_mapping, training=False)
        macs = alexnet_mapping.network.connection_count
        assert evaln == pytest.approx(2 * macs, rel=0.02)


class TestMergeAndThroughput:
    def test_merge_sums_member_costs(self, node):
        mapping = map_network(zoo.googlenet(), node)
        alloc = mapping.conv_allocations["inc3a"]
        reports = _conv_stage_reports(mapping, training=False,
                                      tile_multiplier=1)
        inc = next(r for r in reports if r.unit == "inc3a")
        # The merged stage is at least as long as any single member's
        # share would be: six branch convolutions add up.
        assert inc.cost.compute_cycles > 0
        assert inc.cost.traffic.comp_mem_bytes > 0
        assert len(alloc.members) == 6

    def test_throughput_picks_slowest_stage(self, alexnet_mapping):
        conv = _conv_stage_reports(alexnet_mapping, training=True,
                                   tile_multiplier=1)
        rate, limiting = _throughput(
            alexnet_mapping, conv, [], training=False, minibatch=256
        )
        slowest = max(conv, key=lambda s: s.cycles)
        assert limiting.unit == slowest.unit
        expected = (
            alexnet_mapping.copies
            * alexnet_mapping.node.frequency_hz
            / slowest.cycles
        )
        assert rate == pytest.approx(expected)

    def test_training_drain_slows_small_minibatches(self, alexnet_mapping):
        conv = _conv_stage_reports(alexnet_mapping, training=True,
                                   tile_multiplier=1)
        fast, _ = _throughput(
            alexnet_mapping, conv, [], training=True, minibatch=4096
        )
        slow, _ = _throughput(
            alexnet_mapping, conv, [], training=True, minibatch=16
        )
        assert slow < fast
