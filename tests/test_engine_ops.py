"""Direct semantic tests for the remaining engine instructions."""

import numpy as np
import pytest

from repro.arch.presets import conv_chip
from repro.dnn.layers import Activation, PoolMode
from repro.errors import SimulationError
from repro.functional import tensor_ops as ops
from repro.isa import Opcode, Program, assemble, make
from repro.sim.engine import ACT_CODES, SAMP_CODES, Engine
from repro.sim.machine import Machine, pack_shape


def machine(cols=3, rows=2):
    return Machine(conv_chip(), cols, rows)


def run(m, *programs):
    for prog in programs:
        m.load_program(prog)
    engine = Engine(m)
    return engine, engine.run()


def one_instr(instr, tile="t0"):
    prog = Program(tile=tile)
    prog.append(instr)
    prog.append(make(Opcode.HALT))
    return prog


class TestOffloadOps:
    @pytest.mark.parametrize(
        "fn", [Activation.RELU, Activation.TANH, Activation.SIGMOID,
               Activation.SOFTMAX, Activation.NONE],
    )
    def test_ndactfn_all_functions(self, fn):
        m = machine()
        x = np.linspace(-2, 2, 8).astype(np.float32)
        m.mem_tile(0).write(0, x, False)
        run(m, one_instr(make(
            Opcode.NDACTFN, fn_type=ACT_CODES[fn], in_addr=0, port=0,
            size=8, out_addr=16, out_port=0,
        )))
        want = ops.activate(x.copy(), fn)
        np.testing.assert_allclose(
            m.mem_tile(0).read(16, 8), want, atol=1e-6
        )

    def test_ndactbp_masks_with_adjacent_activations(self):
        """NDACTBP convention: activations live at err_addr + size."""
        m = machine()
        err = np.ones(4, np.float32)
        act = np.array([0.5, 0.0, 1.2, 0.0], np.float32)  # relu outputs
        m.mem_tile(0).write(0, err, False)
        m.mem_tile(0).write(4, act, False)
        run(m, one_instr(make(
            Opcode.NDACTBP, fn_type=ACT_CODES[Activation.RELU],
            err_addr=0, port=0, size=4, out_addr=16, out_port=0,
        )))
        np.testing.assert_allclose(
            m.mem_tile(0).read(16, 4), [1.0, 0.0, 1.0, 0.0]
        )

    @pytest.mark.parametrize("mode", [PoolMode.MAX, PoolMode.AVG])
    def test_ndsubsamp(self, mode):
        m = machine()
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        m.mem_tile(0).write(0, x, False)
        run(m, one_instr(make(
            Opcode.NDSUBSAMP, samp_type=SAMP_CODES[mode], in_addr=0,
            port=0, in_size=pack_shape(4, 4), window=2, stride=2,
            out_addr=32, out_port=1,
        )))
        want, _ = ops.pool_forward(x, 2, 2, 0, mode)
        np.testing.assert_allclose(
            m.mem_tile(1).read(32, 4).reshape(1, 2, 2), want
        )

    def test_ndupsamp_spreads_average_error(self):
        m = machine()
        err = np.array([[4.0]], np.float32).reshape(1, 1, 1)
        m.mem_tile(0).write(0, err, False)
        run(m, one_instr(make(
            Opcode.NDUPSAMP, samp_type=SAMP_CODES[PoolMode.AVG],
            in_addr=0, port=0, in_size=pack_shape(1, 1), window=2,
            stride=2, out_addr=8, out_port=0,
        )))
        np.testing.assert_allclose(m.mem_tile(0).read(8, 4), 1.0)


class TestTransferOps:
    def test_dmastore_is_a_push(self):
        """DMASTORE moves data like DMALOAD; the distinction is which
        tile initiates (timing, not semantics, in the engine)."""
        m = machine()
        m.mem_tile(1).write(0, np.array([3.0, 4.0], np.float32), False)
        run(m, one_instr(make(
            Opcode.DMASTORE, src_addr=0, src_port=1, dst_addr=8,
            dst_port=2, size=2, is_accum=0,
        )))
        assert m.mem_tile(2).read(8, 2).tolist() == [3.0, 4.0]

    def test_passbuff_handshakes_cost_cycles_only(self):
        m = machine()
        sentinel = np.array([9.0], np.float32)
        m.mem_tile(0).write(0, sentinel, False)
        _, report = run(m, one_instr(make(
            Opcode.PASSBUFF_RD, addr=0, port=0, size=1,
        )))
        assert m.mem_tile(0).read(0, 1)[0] == 9.0  # data untouched
        assert report.cycles >= 2

    def test_dma_to_external_and_back(self):
        m = machine()
        m.mem_tile(0).write(0, np.array([5.0], np.float32), False)
        prog = assemble(
            """
            DMASTORE src_addr=0, src_port=0, dst_addr=100, dst_port=65535, size=1, is_accum=0
            DMALOAD src_addr=100, src_port=65535, dst_addr=4, dst_port=0, size=1, is_accum=0
            HALT
            """,
            tile="ext",
        )
        engine, _ = run(m, prog)
        assert m.mem_tile(0).read(4, 1)[0] == 5.0
        assert engine.external[100] == 5.0


class TestEngineGuards:
    def test_tracker_arm_on_external_rejected(self):
        m = machine()
        prog = one_instr(make(
            Opcode.MEMTRACK, addr=0, port=65535, size=4,
            num_updates=1, num_reads=1,
        ))
        m.load_program(prog)
        with pytest.raises(SimulationError):
            Engine(m).run()

    def test_matmul_shape_mismatch_detected(self):
        m = machine()
        prog = one_instr(make(
            Opcode.MATMUL, in1_addr=0, in1_port=0,
            in1_size=pack_shape(1, 5), in2_addr=32, in2_port=0,
            in2_size=pack_shape(3, 4), out_addr=0, out_port=1,
            is_accum=0,
        ))
        m.load_program(prog)
        with pytest.raises(SimulationError):
            Engine(m).run()

    def test_inject_requires_armed_range_not_readable(self):
        m = machine()
        prog = one_instr(make(
            Opcode.MEMTRACK, addr=0, port=0, size=2,
            num_updates=1, num_reads=1,
        ))
        m.load_program(prog)
        engine = Engine(m)
        engine.run()
        engine.inject(0, 0, np.array([1.0, 2.0], np.float32))
        assert m.mem_tile(0).read(0, 2).tolist() == [1.0, 2.0]
        # A second injection hits the now-READABLE range and is refused.
        with pytest.raises(SimulationError):
            engine.inject(0, 0, np.array([3.0, 4.0], np.float32))
