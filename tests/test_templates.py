"""Tests for the assembly template library (Sec 4.2) and register-
indirect data operands."""

import numpy as np
import pytest

from repro.arch.presets import conv_chip
from repro.compiler.templates import (
    CONV_BATCH_FP,
    DMA_GATHER,
    MATMUL_BLOCKED_FP,
    TEMPLATE_LIBRARY,
    WUPDATE_SWEEP,
)
from repro.errors import ProgramError, SimulationError
from repro.functional import tensor_ops as ops
from repro.isa import Opcode, assemble
from repro.sim.engine import Engine
from repro.sim.machine import (
    Machine,
    instruction_accesses,
    is_reg_operand,
    pack_shape,
    reg_operand,
)


def machine(cols=3, rows=1):
    return Machine(conv_chip(), cols, rows)


class TestRegisterIndirection:
    def test_encoding_roundtrip(self):
        value = reg_operand(5)
        assert is_reg_operand(value)
        assert not is_reg_operand(5)

    def test_out_of_range_register(self):
        with pytest.raises(SimulationError):
            reg_operand(64)

    def test_assembler_rn_syntax(self):
        prog = assemble(
            "DMALOAD src_addr=r2, src_port=0, dst_addr=4, dst_port=1, "
            "size=2, is_accum=0\nHALT"
        )
        assert is_reg_operand(prog[0].operand("src_addr"))

    def test_indirect_dma_executes(self):
        m = machine()
        m.mem_tile(0).write(10, np.array([7.0, 8.0], np.float32), False)
        prog = assemble(
            """
            LDRI rd=2, value=10
            DMALOAD src_addr=r2, src_port=0, dst_addr=0, dst_port=1, size=2, is_accum=0
            HALT
            """,
            tile="t",
        )
        m.load_program(prog)
        Engine(m).run()
        assert m.mem_tile(1).read(0, 2).tolist() == [7.0, 8.0]

    def test_static_analysis_rejects_indirect(self):
        """Register-indirect addresses are invisible to the calibrator —
        the documented reason the code generators unroll."""
        prog = assemble(
            "DMALOAD src_addr=r2, src_port=0, dst_addr=4, dst_port=1, "
            "size=2, is_accum=0\nHALT"
        )
        with pytest.raises(SimulationError):
            instruction_accesses(prog[0])


class TestTemplateInstantiation:
    def test_missing_parameter(self):
        with pytest.raises(ProgramError):
            DMA_GATHER.instantiate(COUNT=2)

    def test_unexpected_parameter(self):
        with pytest.raises(ProgramError):
            DMA_GATHER.instantiate(
                COUNT=1, SRC_BASE=0, SRC_STRIDE=4, SRC_PORT=0,
                DST_BASE=0, CHUNK_WORDS=2, DST_PORT=1, BOGUS=9,
            )

    def test_library_complete(self):
        assert set(TEMPLATE_LIBRARY) == {
            "conv-batch-fp", "matmul-blocked-fp", "dma-gather",
            "wupdate-sweep",
        }

    def test_programs_validate(self):
        prog = DMA_GATHER.instantiate(
            COUNT=3, SRC_BASE=0, SRC_STRIDE=8, SRC_PORT=0,
            DST_BASE=0, CHUNK_WORDS=4, DST_PORT=1,
        )
        prog.validate()
        assert prog[-1].opcode is Opcode.HALT


class TestTemplateExecution:
    def test_conv_batch_template_matches_numpy(self):
        """The looped template computes the same batch convolution the
        unrolled code generator emits."""
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, (1, 6, 6)).astype(np.float32)
        kernels = rng.normal(0, 1, (4, 1, 1, 3, 3)).astype(np.float32)

        m = machine()
        m.mem_tile(0).write(0, x, False)
        m.mem_tile(0).write(100, kernels, False)
        prog = CONV_BATCH_FP.instantiate(
            tile="conv",
            N_KERNELS=4, IN_ADDR=0, IN_PORT=0,
            IN_SIZE=pack_shape(6, 6), KER_BASE=100, KER_WORDS=9,
            KER_SIZE=pack_shape(3, 3), STRIDE=1, PAD=1,
            OUT_BASE=0, OUT_WORDS=36, OUT_PORT=1, IS_ACCUM=0,
        )
        m.load_program(prog)
        report = Engine(m).run()
        for f in range(4):
            want = ops.conv2d_forward(
                x, kernels[f], np.zeros(1, np.float32), 1, 1
            )
            got = m.mem_tile(1).read(f * 36, 36).reshape(1, 6, 6)
            np.testing.assert_allclose(got, want, atol=1e-5)
        # The loop executed: 4 iterations x 5 instructions + prologue.
        assert report.instructions == 3 + 4 * 5 + 1

    def test_matmul_blocked_template(self):
        rng = np.random.default_rng(1)
        vec = rng.normal(0, 1, 6).astype(np.float32)
        w = rng.normal(0, 1, (8, 6)).astype(np.float32)
        m = machine()
        m.mem_tile(0).write(0, vec, False)
        m.mem_tile(0).write(50, w, False)
        prog = MATMUL_BLOCKED_FP.instantiate(
            tile="fc",
            N_BLOCKS=4, VEC_ADDR=0, VEC_PORT=0,
            VEC_SIZE=pack_shape(1, 6), W_BASE=50, W_BLOCK_WORDS=12,
            W_BLOCK_SIZE=pack_shape(2, 6), OUT_BASE=0, BLOCK_ROWS=2,
            OUT_PORT=1,
        )
        m.load_program(prog)
        Engine(m).run()
        np.testing.assert_allclose(
            m.mem_tile(1).read(0, 8), w @ vec, atol=1e-5
        )

    def test_dma_gather_template(self):
        m = machine()
        src = np.arange(24, dtype=np.float32)
        m.mem_tile(0).write(0, src, False)
        prog = DMA_GATHER.instantiate(
            tile="gather",
            COUNT=3, SRC_BASE=0, SRC_STRIDE=8, SRC_PORT=0,
            DST_BASE=0, CHUNK_WORDS=2, DST_PORT=1,
        )
        m.load_program(prog)
        Engine(m).run()
        np.testing.assert_allclose(
            m.mem_tile(1).read(0, 6), [0, 1, 8, 9, 16, 17]
        )

    def test_wupdate_sweep_template(self):
        m = machine()
        m.mem_tile(0).write(0, np.ones(8, np.float32), False)
        m.mem_tile(0).write(8, np.full(8, 2.0, np.float32), False)
        prog = WUPDATE_SWEEP.instantiate(
            tile="update",
            N_CHUNKS=2, W_BASE=0, G_BASE=8, CHUNK_WORDS=4, PORT=0,
            LR_NUM=1, LR_DENOM=4,
        )
        m.load_program(prog)
        Engine(m).run()
        # w -= 0.25 * 2.0 everywhere; gradients consumed.
        np.testing.assert_allclose(m.mem_tile(0).read(0, 8), 0.5)
        np.testing.assert_allclose(m.mem_tile(0).read(8, 8), 0.0)
