"""Tests for failure-aware serving: the seeded fault/repair lifecycle,
request timeouts/retries/hedging, the four-way outcome taxonomy and its
conservation invariant, SLO error budgets, and the ``chaos`` CLI verb.

The acceptance config everywhere is the CI smoke's: lenet5 under
``mtbf 0.05s, mttr 0.02s, seed 7`` with greedy batching, where a
tile-slow fault halves the bottleneck stage and degraded p99 is
exactly twice the healthy p99.
"""

import json

import pytest

from repro import cli
from repro.arch import single_precision_node
from repro.bench.dashboard import chaos_html, write_chaos_html
from repro.dnn import zoo
from repro.errors import ConfigError, SLOViolation
from repro.faults import FaultKind
from repro.serve import (
    CHAOS_KINDS,
    BatchPolicy,
    FailureConfig,
    FailureLifecycle,
    ServeConfig,
    SLOPolicy,
    parse_chaos_kinds,
    run_curve,
    sample_failure_events,
    simulate_serving,
)
from repro.serve.failures import BURN_CAP
from repro.serve.simulator import _ARRIVAL, _DEPART, _FAULT, _TIMER

NODE = single_precision_node()
GREEDY = BatchPolicy(kind="greedy")

#: The CI acceptance configuration: faults land on observable columns
#: and greedy batching makes the rate derating visible in latency.
CHAOS = FailureConfig(mtbf_s=0.05, mttr_s=0.02, seed=7)
FAST = ServeConfig(
    qps=5_000.0, duration_s=0.25, seed=7, policy=GREEDY, failures=CHAOS,
)


def _nets(*names):
    return [zoo.load(name) for name in names]


def _conserves(stats) -> bool:
    return stats.offered == (
        stats.completed + stats.shed + stats.timed_out + stats.failed
    )


class TestFailureConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(mtbf_s=0.0, mttr_s=0.1),
        dict(mtbf_s=0.1, mttr_s=-1.0),
        dict(mtbf_s=0.1, mttr_s=0.1, kinds=()),
        dict(mtbf_s=0.1, mttr_s=0.1, kinds=(FaultKind.DMA_BITFLIP,)),
        dict(mtbf_s=0.1, mttr_s=0.1, slow_factor=0.0),
        dict(mtbf_s=0.1, mttr_s=0.1, slow_factor=1.5),
        dict(mtbf_s=0.1, mttr_s=0.1, max_faults=0),
    ])
    def test_invalid_configs_are_config_errors(self, kwargs):
        with pytest.raises(ConfigError):
            FailureConfig(**kwargs)

    def test_parse_chaos_kinds(self):
        kinds = parse_chaos_kinds("tile-slow,link-down")
        assert set(kinds) <= set(CHAOS_KINDS)
        with pytest.raises(ConfigError):
            parse_chaos_kinds("dma-bitflip")
        with pytest.raises(ConfigError):
            parse_chaos_kinds("bogus")

    def test_round_trips_through_to_dict(self):
        doc = CHAOS.to_dict()
        assert doc["mtbf_s"] == 0.05
        assert doc["seed"] == 7


class TestSLOPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SLOPolicy(p99_ms=0.0)
        with pytest.raises(ConfigError):
            SLOPolicy(availability=0.0)
        with pytest.raises(ConfigError):
            SLOPolicy(availability=1.5)
        assert not SLOPolicy().enforced
        assert SLOPolicy(p99_ms=1.0).enforced

    def test_error_budget_burn(self):
        slo = SLOPolicy(availability=0.99)
        # Half the 1% budget burned.
        assert slo.error_budget_burn(0.995) == pytest.approx(0.5)
        assert slo.error_budget_burn(1.0) == 0.0
        # Zero budget: any unavailability saturates the cap.
        assert SLOPolicy(availability=1.0).error_budget_burn(0.999) == \
            BURN_CAP
        # No availability objective: nothing to burn.
        assert SLOPolicy(p99_ms=1.0).error_budget_burn(0.5) == 0.0


class TestSampling:
    def _lifecycle(self, config=CHAOS):
        return FailureLifecycle(
            config, _nets("LeNet-5"), NODE, duration_s=0.25
        )

    def test_events_are_seeded_and_sorted(self):
        a = self._lifecycle().events
        b = self._lifecycle().events
        assert a == b
        times = [e.time_s for e in a]
        assert times == sorted(times)

    def test_every_fault_has_a_repair(self):
        events = self._lifecycle().events
        assert len(events) % 2 == 0
        by_id = {}
        for e in events:
            by_id.setdefault(e.fault.fault_id, []).append(e.action)
        for actions in by_id.values():
            assert sorted(actions) == ["fault", "repair"]

    def test_different_seeds_differ(self):
        other = FailureConfig(mtbf_s=0.05, mttr_s=0.02, seed=8)
        assert self._lifecycle().events != self._lifecycle(other).events

    def test_max_faults_caps_the_stream(self):
        capped = FailureConfig(
            mtbf_s=0.001, mttr_s=0.02, seed=7, max_faults=3
        )
        lifecycle = self._lifecycle(capped)
        assert len(lifecycle.events) <= 6
        assert sample_failure_events(
            capped, 0.25, lifecycle.footprint
        ) == lifecycle.events


class TestLifecycle:
    def test_healthy_rebuild_is_the_baseline_placement(self):
        lifecycle = FailureLifecycle(
            CHAOS, _nets("LeNet-5"), NODE, duration_s=0.25
        )
        healthy = lifecycle.rebuild(frozenset())
        assert healthy.placement is lifecycle.placement
        assert not healthy.down

    def test_rebuilds_are_memoized_and_derate(self):
        lifecycle = FailureLifecycle(
            CHAOS, _nets("LeNet-5"), NODE, duration_s=0.25
        )
        assert lifecycle.events, "acceptance seed must inject faults"
        fault_id = lifecycle.events[0].fault.fault_id
        active = frozenset([fault_id])
        degraded = lifecycle.rebuild(active)
        assert lifecycle.rebuild(active) is degraded
        healthy_rate = lifecycle.placement.tenant("LeNet-5").rate_qps
        tenant = degraded.tenant("LeNet-5")
        if tenant is not None:  # not down: strictly slower service
            assert tenant.rate_qps < healthy_rate


class TestChaosRun:
    def test_rerun_is_byte_identical(self):
        nets = _nets("LeNet-5")
        dumps = [
            json.dumps(
                simulate_serving(nets, NODE, FAST).to_dict(),
                sort_keys=True,
            )
            for _ in range(2)
        ]
        assert dumps[0] == dumps[1]

    def test_degraded_p99_strictly_above_healthy(self):
        report = simulate_serving(_nets("LeNet-5"), NODE, FAST)
        stats = report.tenant("LeNet-5")
        assert stats.healthy_ms.count and stats.degraded_ms.count
        assert stats.degraded_ms.percentile(99) > \
            stats.healthy_ms.percentile(99)
        assert report.degraded_s > 0
        assert report.degraded_intervals

    def test_outcomes_conserve_offered(self):
        report = simulate_serving(_nets("LeNet-5"), NODE, FAST)
        for stats in report.tenants:
            assert _conserves(stats)

    def test_fault_events_and_timeline_in_snapshot(self):
        doc = simulate_serving(_nets("LeNet-5"), NODE, FAST).to_dict()
        assert doc["failures"]["degraded_s"] > 0
        assert len(doc["failures"]["events"]) % 2 == 0
        assert doc["failures"]["timeline"]
        assert doc["config"]["retries"] == 0

    def test_heap_tie_break_order_is_pinned(self):
        # Retry re-arrivals and fault transitions extend the event heap;
        # the tie-break at equal timestamps must stay
        # DEPART < ARRIVAL < TIMER < FAULT or same-instant reruns
        # reorder and determinism breaks.
        assert (_DEPART, _ARRIVAL, _TIMER, _FAULT) == (0, 1, 2, 3)

    def test_retries_and_repairs_rerun_identically(self):
        config = ServeConfig(
            qps=20_000.0, duration_s=0.1, seed=7, policy=GREEDY,
            failures=FailureConfig(mtbf_s=0.02, mttr_s=0.01, seed=7),
            timeout_s=0.01, retries=2, backoff_s=0.001, hedge_s=0.002,
        )
        nets = _nets("LeNet-5")
        dumps = [
            json.dumps(
                simulate_serving(nets, NODE, config).to_dict(),
                sort_keys=True,
            )
            for _ in range(2)
        ]
        assert dumps[0] == dumps[1]
        report = simulate_serving(nets, NODE, config)
        for stats in report.tenants:
            assert _conserves(stats)

    def test_curve_under_faults_matches_across_workers(self):
        config = ServeConfig(
            duration_s=0.02, seed=3, policy=GREEDY,
            failures=FailureConfig(mtbf_s=0.02, mttr_s=0.01, seed=3),
        )
        serial = run_curve(
            ["lenet5"], NODE, config, fractions=(0.5, 1.0), workers=1
        )
        pooled = run_curve(
            ["lenet5"], NODE, config, fractions=(0.5, 1.0), workers=2
        )
        assert json.dumps(serial.to_dict(), sort_keys=True) == \
            json.dumps(pooled.to_dict(), sort_keys=True)
        for row in serial.rows():
            assert row["offered"] == (
                row["completed"] + row["shed"] + row["timed_out"]
                + row["failed"]
            )


class TestRobustRequests:
    def test_timeouts_count_and_conserve(self):
        config = ServeConfig(
            qps=5_000.0, duration_s=0.05, seed=7,
            timeout_s=1e-6,  # below the pipeline-fill floor
        )
        report = simulate_serving(_nets("AlexNet"), NODE, config)
        stats = report.tenant("AlexNet")
        assert stats.timed_out > 0
        assert _conserves(stats)

    def test_retries_recover_shed_copies(self):
        tight = ServeConfig(
            qps=200_000.0, duration_s=0.02, seed=7,
            policy=BatchPolicy(queue_depth=4),
            retries=2, backoff_s=0.001,
        )
        report = simulate_serving(_nets("AlexNet"), NODE, tight)
        stats = report.tenant("AlexNet")
        assert stats.retries > 0
        assert stats.shed_copies >= stats.shed
        assert _conserves(stats)
        # Without a deadline every root eventually lands somewhere.
        baseline = simulate_serving(
            _nets("AlexNet"), NODE,
            ServeConfig(
                qps=200_000.0, duration_s=0.02, seed=7,
                policy=BatchPolicy(queue_depth=4),
            ),
        ).tenant("AlexNet")
        assert stats.completed > baseline.completed

    def test_hedging_spawns_duplicates_without_double_counting(self):
        config = ServeConfig(
            qps=5_000.0, duration_s=0.05, seed=7, hedge_s=1e-4,
        )
        report = simulate_serving(_nets("AlexNet"), NODE, config)
        stats = report.tenant("AlexNet")
        assert stats.hedges > 0
        assert stats.completed <= stats.offered
        assert _conserves(stats)

    @pytest.mark.parametrize("kwargs", [
        dict(timeout_s=0.0),
        dict(retries=-1),
        dict(backoff_s=-0.1),
        dict(hedge_s=-1e-3),
        dict(qps=-5.0),
        dict(duration_s=0.0),
        dict(minibatch=0),
        dict(max_requests=0),
        dict(arrivals="bursty"),
    ])
    def test_invalid_serve_configs_are_config_errors(self, kwargs):
        with pytest.raises(ConfigError):
            ServeConfig(**kwargs)


class TestSLOReport:
    def test_findings_cover_tenants_and_node(self):
        config = ServeConfig(
            qps=5_000.0, duration_s=0.05, seed=7,
            slo=SLOPolicy(p99_ms=1e9, availability=0.5),
        )
        report = simulate_serving(_nets("LeNet-5", "AlexNet"), NODE,
                                  config)
        findings = report.slo_findings()
        scopes = {f.scope for f in findings}
        assert scopes == {"LeNet-5", "AlexNet", "node"}
        assert all(f.ok for f in findings)
        assert not report.slo_violations()

    def test_violations_and_burn_under_shedding(self):
        config = ServeConfig(
            qps=200_000.0, duration_s=0.02, seed=7,
            policy=BatchPolicy(queue_depth=4),
            slo=SLOPolicy(availability=0.999),
        )
        report = simulate_serving(_nets("AlexNet"), NODE, config)
        assert report.availability < 0.999
        assert report.slo_violations()
        assert report.error_budget_burn() > 1.0
        assert report.to_dict()["slo"]["violations"] >= 1


class TestTelemetry:
    def test_outcome_counters_are_timestamped_samples(self):
        # The Chrome-trace exporter needs "C"-phase series: shed,
        # completed and fault/repair counters must carry per-event
        # timestamps, not just end-of-run totals.
        from repro.telemetry import capture

        config = ServeConfig(
            qps=200_000.0, duration_s=0.02, seed=7,
            policy=BatchPolicy(queue_depth=4),
            failures=FailureConfig(mtbf_s=0.005, mttr_s=0.002, seed=7),
        )
        with capture() as tel:
            simulate_serving(_nets("LeNet-5"), NODE, config)
        names = {(s.group, s.name) for s in tel.counter_samples}
        assert ("serve/LeNet-5", "completed") in names
        assert ("serve/LeNet-5", "shed") in names
        assert ("serve/faults", "fault") in names
        assert ("serve/faults", "repair") in names
        times = [s.ts for s in tel.counter_samples]
        assert all(t >= 0 for t in times)
        # Samples carry the running value, so each series is monotone.
        shed = [
            s.value for s in tel.counter_samples
            if s.name == "shed" and s.group == "serve/LeNet-5"
        ]
        assert shed == sorted(shed) and shed


class TestChaosDashboard:
    def test_chaos_html_renders_bands_and_tables(self, tmp_path):
        report = simulate_serving(_nets("LeNet-5"), NODE, FAST)
        html = chaos_html(report)
        assert "Latency timeline" in html
        assert "Request outcomes" in html
        assert "Fault/repair log" in html
        assert html.count("<rect") == len(report.degraded_intervals)
        path = write_chaos_html(report, tmp_path / "chaos.html")
        assert path.read_text() == html


class TestChaosCli:
    ACCEPT = [
        "chaos", "lenet5", "--mtbf", "0.05", "--mttr", "0.02",
        "--seed", "7",
    ]

    def test_chaos_verb_runs_and_reports(self, capsys):
        assert cli.main(self.ACCEPT) == 0
        out = capsys.readouterr().out
        assert "LeNet-5" in out
        assert "degraded" in out

    def test_chaos_json_reruns_identically(self, capsys):
        argv = self.ACCEPT + ["--json"]
        assert cli.main(argv) == 0
        first = capsys.readouterr().out
        assert cli.main(argv) == 0
        assert first == capsys.readouterr().out
        doc = json.loads(first)
        row = doc["tenants"]["LeNet-5"]
        assert row["degraded_p99_ms"] > row["healthy_p99_ms"] > 0

    def test_slo_violation_exits_1_after_writing(self, tmp_path):
        out = tmp_path / "chaos.json"
        code = cli.main(
            self.ACCEPT + ["--slo-p99", "0.00001", "--out", str(out)]
        )
        assert code == 1
        assert json.loads(out.read_text())["slo"]["violations"] >= 1

    def test_slo_violation_raises_typed_error(self):
        config = ServeConfig(
            qps=5_000.0, duration_s=0.05, seed=7, policy=GREEDY,
            failures=CHAOS, slo=SLOPolicy(p99_ms=1e-5),
        )
        report = simulate_serving(_nets("LeNet-5"), NODE, config)
        with pytest.raises(SLOViolation) as err:
            cli._enforce_slo(report)
        assert err.value.violations

    def test_bad_fault_kind_exits_2(self):
        with pytest.raises(SystemExit) as err:
            cli.main([
                "chaos", "lenet5", "--mtbf", "0.05", "--mttr", "0.02",
                "--fault-kind", "dma-bitflip",
            ])
        assert err.value.code == 2

    def test_bad_mtbf_exits_2(self):
        with pytest.raises(SystemExit) as err:
            cli.main([
                "chaos", "lenet5", "--mtbf", "-1", "--mttr", "0.02",
            ])
        assert err.value.code == 2

    def test_serve_faults_with_curve_exits_2(self):
        with pytest.raises(SystemExit) as err:
            cli.main([
                "serve", "lenet5", "--curve", "--faults", "0.05",
            ])
        assert err.value.code == 2

    def test_serve_static_faults_runs(self, capsys):
        code = cli.main([
            "serve", "lenet5", "--faults", "0.05", "--fault-seed",
            "11", "--duration", "0.02",
        ])
        assert code == 0
        assert "sustained" in capsys.readouterr().out
