"""Tests for the instruction set, programs and assembler."""

import pytest

from repro.errors import ProgramError
from repro.isa import (
    BRANCH_OPCODES,
    Instruction,
    InstrGroup,
    NUM_REGISTERS,
    OPCODE_GROUPS,
    OPERAND_NAMES,
    Opcode,
    Program,
    assemble,
    disassemble,
    make,
)


class TestInstructionSet:
    def test_exactly_28_instructions(self):
        """Sec 3.2.2: the ISA contains 28 instructions."""
        assert len(Opcode) == 28

    def test_five_groups(self):
        groups = set(OPCODE_GROUPS.values())
        assert groups == set(InstrGroup)

    def test_group_sizes(self):
        by_group = {}
        for op, group in OPCODE_GROUPS.items():
            by_group.setdefault(group, []).append(op)
        assert len(by_group[InstrGroup.SCALAR]) == 12
        assert len(by_group[InstrGroup.COARSE]) == 2
        assert len(by_group[InstrGroup.OFFLOAD]) == 7
        assert len(by_group[InstrGroup.TRANSFER]) == 5
        assert len(by_group[InstrGroup.TRACK]) == 2

    def test_fig8_instructions_present(self):
        """Every instruction listed in Fig 8 exists."""
        for name in ("LDRI", "ADDR", "BNEZ", "NDCONV", "MATMUL", "NDACTFN",
                     "NDSUBSAMP", "DMALOAD", "DMASTORE", "MEMTRACK"):
            assert Opcode(name)


class TestInstruction:
    def test_make_and_lookup(self):
        instr = make(Opcode.LDRI, rd=3, value=42)
        assert instr.operand("rd") == 3
        assert instr.operand("value") == 42
        assert instr.named_operands() == {"rd": 3, "value": 42}

    def test_make_missing_operand(self):
        with pytest.raises(ProgramError):
            make(Opcode.LDRI, rd=3)

    def test_make_extra_operand(self):
        with pytest.raises(ProgramError):
            make(Opcode.HALT, bogus=1)

    def test_wrong_arity(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.LDRI, (1,))

    def test_unknown_operand_name(self):
        instr = make(Opcode.LDRI, rd=0, value=0)
        with pytest.raises(ProgramError):
            instr.operand("nonexistent")

    def test_str_includes_names(self):
        instr = make(Opcode.ADDR, rd=1, rs1=2, rs2=3, comment="sum")
        text = str(instr)
        assert "ADDR" in text and "rd=1" in text and "sum" in text


class TestProgram:
    def _program(self):
        prog = Program(tile="t0")
        prog.append(make(Opcode.LDRI, rd=1, value=5))
        prog.append(make(Opcode.SUBRI, rd=1, rs=1, value=1))
        prog.append(make(Opcode.BGTZ, rs=1, offset=-2))
        prog.append(make(Opcode.HALT))
        return prog

    def test_validate_ok(self):
        self._program().validate()

    def test_empty_program_invalid(self):
        with pytest.raises(ProgramError):
            Program(tile="t").validate()

    def test_must_end_with_halt(self):
        prog = Program(tile="t")
        prog.append(make(Opcode.LDRI, rd=0, value=0))
        with pytest.raises(ProgramError):
            prog.validate()

    def test_branch_out_of_range(self):
        prog = Program(tile="t")
        prog.append(make(Opcode.BRANCH, offset=5))
        prog.append(make(Opcode.HALT))
        with pytest.raises(ProgramError):
            prog.validate()

    def test_register_out_of_range(self):
        prog = Program(tile="t")
        prog.append(make(Opcode.LDRI, rd=NUM_REGISTERS, value=0))
        prog.append(make(Opcode.HALT))
        with pytest.raises(ProgramError):
            prog.validate()

    def test_counts_by_group(self):
        counts = self._program().counts_by_group()
        assert counts[InstrGroup.SCALAR] == 4

    def test_disassemble_listing(self):
        listing = self._program().disassemble()
        assert "Program for t0" in listing
        assert "LDRI" in listing


class TestAssembler:
    SOURCE = """
    ; countdown loop
    LDRI rd=1, value=3
    loop:
    SUBRI rd=1, rs=1, value=1  ; decrement
    BGTZ rs=1, offset=@loop
    HALT
    """

    def test_assemble_with_labels(self):
        prog = assemble(self.SOURCE, tile="demo")
        assert len(prog) == 4
        assert prog[2].operand("offset") == -2

    def test_round_trip(self):
        prog = assemble(self.SOURCE)
        text = disassemble(prog)
        again = assemble(text)
        assert [i.operands for i in again] == [i.operands for i in prog]

    def test_unknown_mnemonic(self):
        with pytest.raises(ProgramError):
            assemble("FROBNICATE rd=1\nHALT")

    def test_undefined_label(self):
        with pytest.raises(ProgramError):
            assemble("BRANCH offset=@nowhere\nHALT")

    def test_duplicate_label(self):
        with pytest.raises(ProgramError):
            assemble("a:\na:\nHALT")

    def test_label_on_non_branch(self):
        with pytest.raises(ProgramError):
            assemble("x:\nLDRI rd=1, value=@x\nHALT")

    def test_missing_operand(self):
        with pytest.raises(ProgramError):
            assemble("LDRI rd=1\nHALT")

    def test_malformed_operand(self):
        with pytest.raises(ProgramError):
            assemble("LDRI rd 1\nHALT")

    def test_forward_label(self):
        prog = assemble("BRANCH offset=@end\nLDRI rd=0, value=0\nend:\nHALT")
        assert prog[0].operand("offset") == 1

    def test_hex_immediates(self):
        prog = assemble("LDRI rd=1, value=0x10\nHALT")
        assert prog[0].operand("value") == 16
