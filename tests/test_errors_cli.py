"""Every public CLI failure path exits 1 (domain errors) or 2 (usage
errors) with a one-line ``repro:`` message — never a traceback — and
the ``faults`` verb is byte-identical across reruns."""

import pytest

from repro.cli import main
from repro.sweep import CompileCache, set_cache


@pytest.fixture(autouse=True)
def fresh_cache():
    previous = set_cache(CompileCache())
    yield
    set_cache(previous)


def run_cli(argv):
    """Invoke the CLI; returns (exit_code, stdout, stderr)."""
    import io
    from contextlib import redirect_stderr, redirect_stdout

    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        try:
            code = main(argv)
        except SystemExit as exc:
            code = exc.code if isinstance(exc.code, int) else 1
    return code, out.getvalue(), err.getvalue()


class TestExitCodes:
    def test_success_is_zero(self):
        code, out, err = run_cli(["faults", "tinymlp", "--rate", "0"])
        assert code == 0
        assert "Baseline vs degraded" in out
        assert err == ""

    def test_unknown_network_exits_2(self):
        code, _, err = run_cli(["faults", "no-such-net"])
        assert code == 2
        assert err.startswith("repro: unknown network")
        assert "Traceback" not in err

    def test_bad_rate_exits_2(self):
        code, _, err = run_cli(["faults", "tinymlp", "--rate", "2.0"])
        assert code == 2
        assert "rate must be in [0, 1]" in err
        assert "Traceback" not in err

    def test_bad_kind_exits_2(self):
        code, _, err = run_cli(["faults", "tinymlp", "--kind", "bogus"])
        assert code == 2
        assert "unknown fault kind" in err
        assert "Traceback" not in err

    def test_unmappable_exits_1_without_traceback(self):
        code, _, err = run_cli(
            ["faults", "alexnet", "--rate", "0.93", "--seed", "3"]
        )
        assert code == 1
        assert err.startswith("repro: ")
        assert "capacity exhausted" in err
        assert "Traceback" not in err

    def test_sweep_unknown_network_exits_2(self, tmp_path):
        code, _, err = run_cli(
            ["sweep", "no-such-net",
             "--out", str(tmp_path / "r.json")]
        )
        assert code == 2
        assert err.startswith("repro:")

    def test_sweep_bad_fault_kind_exits_2(self, tmp_path):
        code, _, err = run_cli(
            ["sweep", "tinymlp", "--fault-rate", "0.1",
             "--fault-kind", "bogus", "--out", str(tmp_path / "r.json")]
        )
        assert code == 2
        assert "unknown fault kind" in err

    def test_sweep_with_failed_job_exits_1_after_completing(
        self, tmp_path
    ):
        # An unmappable fault rate fails every job, but the sweep still
        # writes results and reports the failures as rows.
        out_path = tmp_path / "r.json"
        code, out, err = run_cli(
            ["sweep", "tinymlp", "--fault-rate", "0.95",
             "--fault-seed", "3", "--retries", "0",
             "--out", str(out_path)]
        )
        assert code == 1
        assert out_path.exists()
        assert "FAILED" in out
        assert "repro: job" in err

    def test_sweep_fail_fast_exits_1(self, tmp_path):
        code, _, err = run_cli(
            ["sweep", "tinymlp", "--fault-rate", "0.95",
             "--fault-seed", "3", "--retries", "0", "--fail-fast",
             "--out", str(tmp_path / "r.json")]
        )
        assert code == 1
        assert "fail-fast" in err


class TestFaultsVerb:
    def test_rerun_byte_identical(self):
        argv = ["faults", "vgg_e", "--rate", "0.02", "--seed", "7"]
        first = run_cli(argv)
        set_cache(CompileCache())  # cold cache: output must not change
        second = run_cli(argv)
        assert first == second
        assert first[0] == 0

    def test_reports_remap_and_ratio(self):
        code, out, _ = run_cli(
            ["faults", "vgg_e", "--rate", "0.02", "--seed", "7"]
        )
        assert code == 0
        assert "fault mask" in out
        assert "remapped" in out
        assert "ratio" in out

    def test_all_kinds_accepted(self):
        code, out, _ = run_cli(
            ["faults", "tinycnn", "--rate", "0.05", "--seed", "1",
             "--kind", "all"]
        )
        assert code == 0
        assert "Baseline vs degraded" in out
