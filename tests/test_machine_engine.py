"""Tests for the engine machine model and the ISA interpreter."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.presets import conv_chip
from repro.errors import SimulationError
from repro.isa import Opcode, Program, assemble, make
from repro.sim.engine import EXTERNAL_PORT, Engine
from repro.sim.machine import Machine, pack_shape, unpack_shape


def machine(cols=3, rows=2):
    return Machine(conv_chip(), cols, rows)


class TestShapePacking:
    def test_roundtrip_examples(self):
        assert unpack_shape(pack_shape(55, 55)) == (55, 55)
        assert unpack_shape(pack_shape(1, 4096)) == (1, 4096)

    @settings(max_examples=200, deadline=None)
    @given(h=st.integers(1, 65535), w=st.integers(1, 65535))
    def test_roundtrip(self, h, w):
        assert unpack_shape(pack_shape(h, w)) == (h, w)

    def test_rejects_oversize(self):
        with pytest.raises(SimulationError):
            pack_shape(70000, 3)
        with pytest.raises(SimulationError):
            pack_shape(0, 3)


class TestMachine:
    def test_tile_grid(self):
        m = machine(cols=3, rows=2)
        assert len(m.mem_tiles) == 6
        assert m.mem_tile_id(2, 1) == 5
        with pytest.raises(SimulationError):
            m.mem_tile_id(3, 0)

    def test_hops(self):
        m = machine(cols=3, rows=2)
        a = m.mem_tile_id(0, 0)
        b = m.mem_tile_id(2, 1)
        assert m.hops(a, b) == 3
        assert m.hops(a, a) == 0

    def test_scratchpad_bounds(self):
        m = machine()
        tile = m.mem_tile(0)
        with pytest.raises(SimulationError):
            tile.read(len(tile.words) - 1, 2)
        with pytest.raises(SimulationError):
            tile.write(-1, np.zeros(2, dtype=np.float32), False)

    def test_accumulating_write(self):
        m = machine()
        tile = m.mem_tile(0)
        tile.write(0, np.array([1.0, 2.0], dtype=np.float32), False)
        tile.write(0, np.array([0.5, 0.5], dtype=np.float32), True)
        assert tile.read(0, 2).tolist() == [1.5, 2.5]

    def test_duplicate_program_rejected(self):
        m = machine()
        prog = Program(tile="t")
        prog.append(make(Opcode.HALT))
        m.load_program(prog)
        with pytest.raises(SimulationError):
            m.load_program(prog)


def run_program(source, m=None, **engine_kwargs):
    m = m or machine()
    prog = assemble(source, tile="t0")
    m.load_program(prog)
    engine = Engine(m, **engine_kwargs)
    report = engine.run()
    return m, engine, report


class TestScalarExecution:
    def test_countdown_loop(self):
        m, _, report = run_program(
            """
            LDRI rd=1, value=5
            LDRI rd=2, value=0
            loop:
            ADDRI rd=2, rs=2, value=3
            SUBRI rd=1, rs=1, value=1
            BGTZ rs=1, offset=@loop
            HALT
            """
        )
        tile = m.comp_tiles["t0"]
        assert tile.reg(2) == 15
        assert report.instructions == 2 + 3 * 5 + 1

    def test_branch_taken_and_not(self):
        m, _, _ = run_program(
            """
            LDRI rd=1, value=0
            BEQZ rs=1, offset=1
            LDRI rd=2, value=99
            LDRI rd=3, value=7
            HALT
            """
        )
        tile = m.comp_tiles["t0"]
        assert tile.reg(2) == 0  # skipped
        assert tile.reg(3) == 7

    def test_arithmetic(self):
        m, _, _ = run_program(
            """
            LDRI rd=1, value=6
            LDRI rd=2, value=7
            MULR rd=3, rs1=1, rs2=2
            SUBR rd=4, rs1=3, rs2=2
            ADDR rd=5, rs1=4, rs2=1
            MOVR rd=6, rs=5
            HALT
            """
        )
        assert m.comp_tiles["t0"].reg(6) == 41


class TestDataInstructions:
    def test_dma_between_tiles(self):
        m = machine()
        m.mem_tile(0).write(0, np.arange(4, dtype=np.float32), False)
        run_program(
            "DMALOAD src_addr=0, src_port=0, dst_addr=8, dst_port=3, "
            "size=4, is_accum=0\nHALT",
            m,
        )
        assert m.mem_tile(3).read(8, 4).tolist() == [0, 1, 2, 3]

    def test_dma_accumulate_commutes(self):
        """Accumulation order never changes the result — the property
        MEMTRACK's correctness argument rests on (Sec 3.2.4)."""
        results = []
        for order in [(0, 1), (1, 0)]:
            m = machine()
            m.mem_tile(0).write(0, np.array([1.0, 2.0], np.float32), False)
            m.mem_tile(1).write(0, np.array([10.0, 20.0], np.float32), False)
            for i, src in enumerate(order):
                prog = Program(tile=f"t{i}")
                prog.append(make(
                    Opcode.DMALOAD, src_addr=0, src_port=src, dst_addr=0,
                    dst_port=2, size=2, is_accum=1,
                ))
                prog.append(make(Opcode.HALT))
                m.load_program(prog)
            Engine(m).run()
            results.append(m.mem_tile(2).read(0, 2).copy())
        np.testing.assert_allclose(results[0], results[1])
        np.testing.assert_allclose(results[0], [11.0, 22.0])

    def test_ndaccum_and_vecmul(self):
        m = machine()
        m.mem_tile(0).write(0, np.array([1, 2, 3], np.float32), False)
        m.mem_tile(0).write(4, np.array([10, 20, 30], np.float32), False)
        run_program(
            """
            NDACCUM src_addr=0, port=0, size=3, dst_addr=4
            VECMUL in1_addr=0, in2_addr=4, port=0, size=3, out_addr=8
            HALT
            """,
            m,
        )
        assert m.mem_tile(0).read(4, 3).tolist() == [11, 22, 33]
        assert m.mem_tile(0).read(8, 3).tolist() == [11, 44, 99]

    def test_wupdate(self):
        m = machine()
        m.mem_tile(0).write(0, np.array([1.0, 1.0], np.float32), False)
        m.mem_tile(0).write(2, np.array([0.5, -0.5], np.float32), False)
        run_program(
            "WUPDATE weight_addr=0, grad_addr=2, port=0, size=2, "
            "lr_num=1, lr_denom=10\nHALT",
            m,
        )
        np.testing.assert_allclose(
            m.mem_tile(0).read(0, 2), [0.95, 1.05]
        )

    def test_prefetch_from_external(self):
        m = machine()
        eng_machine, engine, _ = (None, None, None)
        prog = assemble(
            "PREFETCH src_addr=5, dst_addr=0, dst_port=1, size=3\nHALT",
            tile="t0",
        )
        m.load_program(prog)
        engine = Engine(m)
        engine.external[5:8] = [7.0, 8.0, 9.0]
        engine.run()
        assert m.mem_tile(1).read(0, 3).tolist() == [7, 8, 9]

    def test_ndconv_matches_numpy(self):
        from repro.functional import tensor_ops as ops

        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, (1, 6, 6)).astype(np.float32)
        k = rng.normal(0, 1, (1, 1, 3, 3)).astype(np.float32)
        want = ops.conv2d_forward(x, k, np.zeros(1, np.float32), 1, 1)

        m = machine()
        m.mem_tile(0).write(0, x, False)
        m.mem_tile(0).write(40, k, False)
        prog = Program(tile="t0")
        prog.append(make(
            Opcode.NDCONV, in_addr=0, in_port=0,
            in_size=pack_shape(6, 6), kernel_addr=40,
            kernel_size=pack_shape(3, 3), stride=1, pad=1,
            out_addr=0, out_port=1, is_accum=0,
        ))
        prog.append(make(Opcode.HALT))
        m.load_program(prog)
        Engine(m).run()
        got = m.mem_tile(1).read(0, 36).reshape(1, 6, 6)
        np.testing.assert_allclose(got, want, atol=1e-5)


class TestSynchronization:
    def test_reader_waits_for_writer(self):
        """A consumer DMA armed behind a tracker must observe the
        producer's value, regardless of scheduling order."""
        m = machine()
        # Producer: writes 42 after spinning a while.
        producer = assemble(
            """
            MEMTRACK addr=0, port=1, size=1, num_updates=1, num_reads=1
            LDRI rd=1, value=30
            spin:
            SUBRI rd=1, rs=1, value=1
            BGTZ rs=1, offset=@spin
            DMALOAD src_addr=16, src_port=0, dst_addr=0, dst_port=1, size=1, is_accum=0
            HALT
            """,
            tile="producer",
        )
        consumer = assemble(
            "DMALOAD src_addr=0, src_port=1, dst_addr=4, dst_port=2, "
            "size=1, is_accum=0\nHALT",
            tile="consumer",
        )
        m.mem_tile(0).write(16, np.array([42.0], np.float32), False)
        m.load_program(producer)
        m.load_program(consumer)
        report = Engine(m).run()
        assert m.mem_tile(2).read(4, 1)[0] == 42.0
        assert report.blocked_reads > 0

    def test_deadlock_detection(self):
        m = machine()
        prog = assemble(
            """
            MEMTRACK addr=0, port=0, size=4, num_updates=1, num_reads=1
            DMALOAD src_addr=0, src_port=0, dst_addr=0, dst_port=1, size=4, is_accum=0
            HALT
            """,
            tile="stuck",
        )
        m.load_program(prog)
        with pytest.raises(SimulationError, match="deadlock"):
            Engine(m).run()

    def test_deadlock_report_deterministic(self):
        """Identical machine states yield byte-identical deadlock text,
        sorted by tile id, regardless of program-load order."""

        def stuck(tile, addr):
            return assemble(
                f"""
                MEMTRACK addr={addr}, port=0, size=4, num_updates=1, num_reads=1
                DMALOAD src_addr={addr}, src_port=0, dst_addr=0, dst_port=1, size=4, is_accum=0
                HALT
                """,
                tile=tile,
            )

        def run(order):
            m = machine()
            for name, addr in order:
                m.load_program(stuck(name, addr))
            with pytest.raises(SimulationError) as exc:
                Engine(m).run()
            return str(exc.value)

        first = run([("z_tile", 0), ("a_tile", 32)])
        second = run([("a_tile", 32), ("z_tile", 0)])
        assert first == second
        detail = first.splitlines()[1:]
        assert len(detail) == 2
        assert detail == sorted(detail)
        assert detail[0].lstrip().startswith("a_tile:")

    def test_no_programs(self):
        with pytest.raises(SimulationError):
            Engine(machine()).run()

    def test_livelock_guard(self):
        m = machine()
        prog = assemble(
            """
            loop:
            BRANCH offset=@loop
            HALT
            """,
            tile="spin",
        )
        m.load_program(prog)
        with pytest.raises(SimulationError, match="rounds"):
            Engine(m, max_rounds=100).run()
