"""Tests for the reference model and SGD trainer (FP/BP/WG of Fig 3)."""

import numpy as np
import pytest

from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation
from repro.dnn.zoo import tiny_cnn, tiny_mlp
from repro.errors import ShapeError
from repro.functional import (
    ReferenceModel,
    SGDTrainer,
    iterate_minibatches,
    make_synthetic_dataset,
)
from repro.functional import tensor_ops as ops


def random_image(net, seed=0):
    shape = net.input.output_shape
    rng = np.random.default_rng(seed)
    return rng.normal(
        0, 1, (shape.count, shape.height, shape.width)
    ).astype(np.float32)


class TestForward:
    def test_output_shape(self):
        net = tiny_cnn(num_classes=7)
        model = ReferenceModel(net)
        out = model.forward(random_image(net))
        assert out.shape == (7,)
        assert out.sum() == pytest.approx(1.0)  # softmax head

    def test_rejects_wrong_input(self):
        net = tiny_cnn()
        model = ReferenceModel(net)
        with pytest.raises(ShapeError):
            model.forward(np.zeros((1, 4, 4), np.float32))

    def test_deterministic_given_seed(self):
        net = tiny_cnn()
        a = ReferenceModel(net, seed=5).forward(random_image(net))
        b = ReferenceModel(net, seed=5).forward(random_image(net))
        np.testing.assert_allclose(a, b)

    def test_branching_network_executes(self):
        b = NetworkBuilder("branchy")
        b.input(3, 8)
        trunk = b.conv(4, kernel=3, pad=1)
        left = b.conv(2, kernel=1, inputs=[trunk])
        right = b.conv(2, kernel=3, pad=1, inputs=[trunk])
        cat = b.concat([left, right])
        res = b.conv(4, kernel=1, inputs=[cat])
        b.add([res, cat])
        b.global_pool()
        b.fc(3, activation=Activation.SOFTMAX)
        net = b.build()
        model = ReferenceModel(net)
        out = model.forward(random_image(net))
        assert out.shape == (3,)
        loss = model.backward(1)
        assert np.isfinite(loss)


class TestBackward:
    def test_gradient_numeric_check_fc(self):
        net = tiny_mlp(num_classes=3, in_features=5, hidden=4)
        model = ReferenceModel(net, seed=0)
        img = random_image(net, seed=9)
        model.forward(img)
        model.backward(2)
        analytic = model.state["fc1"].grad_weights.copy()
        w = model.state["fc1"].weights
        eps = 1e-4

        def loss_at():
            model.forward(img)
            p = model.state["fc2"].output.reshape(-1)
            return -np.log(max(p[2], 1e-12))

        for idx in [(0, 0), (3, 4), (1, 2)]:
            orig = w[idx]
            w[idx] = orig + eps
            lp = loss_at()
            w[idx] = orig - eps
            lm = loss_at()
            w[idx] = orig
            num = (lp - lm) / (2 * eps)
            assert num == pytest.approx(analytic[idx], rel=5e-2, abs=1e-4)

    def test_gradient_numeric_check_conv(self):
        net = tiny_cnn(num_classes=3, in_size=8)
        model = ReferenceModel(net, seed=1)
        img = random_image(net, seed=2)
        model.forward(img)
        model.backward(0)
        analytic = model.state["conv1"].grad_weights.copy()
        w = model.state["conv1"].weights
        eps = 1e-3

        def loss_at():
            model.forward(img)
            p = model.state["fc2"].output.reshape(-1)
            return -np.log(max(p[0], 1e-12))

        for idx in [(0, 0, 1, 1), (7, 2, 0, 2)]:
            orig = w[idx]
            w[idx] = orig + eps
            lp = loss_at()
            w[idx] = orig - eps
            lm = loss_at()
            w[idx] = orig
            num = (lp - lm) / (2 * eps)
            assert num == pytest.approx(analytic[idx], rel=0.1, abs=1e-3)

    def test_gradients_accumulate_across_images(self):
        """The WG step accumulates over a minibatch (Fig 3a)."""
        net = tiny_mlp()
        model = ReferenceModel(net, seed=0)
        img = random_image(net)
        model.forward(img)
        model.backward(0)
        once = model.state["fc1"].grad_weights.copy()
        model.forward(img)
        model.backward(0)
        np.testing.assert_allclose(
            model.state["fc1"].grad_weights, 2 * once, rtol=1e-5
        )

    def test_zero_gradients(self):
        net = tiny_mlp()
        model = ReferenceModel(net, seed=0)
        model.forward(random_image(net))
        model.backward(0)
        model.zero_gradients()
        assert model.state["fc1"].grad_weights.sum() == 0

    def test_apply_gradients_moves_weights(self):
        net = tiny_mlp()
        model = ReferenceModel(net, seed=0)
        before = model.state["fc1"].weights.copy()
        model.forward(random_image(net))
        model.backward(1)
        model.apply_gradients(0.1)
        assert not np.allclose(before, model.state["fc1"].weights)
        # Gradients were reset by the update.
        assert model.state["fc1"].grad_weights.sum() == 0

    def test_parameter_count_matches_network(self):
        net = tiny_cnn()
        model = ReferenceModel(net)
        assert model.parameter_count() == net.weight_count


class TestTraining:
    def test_cnn_learns_synthetic_task(self):
        net = tiny_cnn(num_classes=4, in_size=12)
        model = ReferenceModel(net, seed=1)
        x, y = make_synthetic_dataset(net, samples=48, num_classes=4, seed=2)
        trainer = SGDTrainer(model, learning_rate=0.05, batch_size=8, seed=3)
        first = trainer.train_epoch(x, y, 0)
        last = first
        for epoch in range(1, 4):
            last = trainer.train_epoch(x, y, epoch)
        assert last.mean_loss < first.mean_loss
        assert last.accuracy > 0.9

    def test_mlp_learns(self):
        net = tiny_mlp(num_classes=3, in_features=10, hidden=16)
        model = ReferenceModel(net, seed=4)
        x, y = make_synthetic_dataset(net, samples=60, num_classes=3, seed=5)
        trainer = SGDTrainer(model, learning_rate=0.1, batch_size=10)
        for epoch in range(5):
            stats = trainer.train_epoch(x, y, epoch)
        assert stats.accuracy > 0.9

    def test_evaluate(self):
        net = tiny_mlp(num_classes=2, in_features=4, hidden=4)
        model = ReferenceModel(net, seed=0)
        x, y = make_synthetic_dataset(net, samples=10, num_classes=2)
        trainer = SGDTrainer(model)
        acc = trainer.evaluate(x, y)
        assert 0.0 <= acc <= 1.0

    def test_trainer_validation(self):
        model = ReferenceModel(tiny_mlp())
        with pytest.raises(ShapeError):
            SGDTrainer(model, learning_rate=0.0)
        with pytest.raises(ShapeError):
            SGDTrainer(model, batch_size=0)

    def test_minibatch_iterator_covers_everything(self):
        rng = np.random.default_rng(0)
        x = np.arange(10)[:, None]
        y = np.arange(10)
        seen = []
        for bx, by in iterate_minibatches(x, y, 3, rng):
            assert len(bx) <= 3
            seen.extend(by.tolist())
        assert sorted(seen) == list(range(10))

    def test_synthetic_dataset_validation(self):
        with pytest.raises(ShapeError):
            make_synthetic_dataset(tiny_mlp(), samples=0, num_classes=2)


class TestUnsupervised:
    """The autoencoder path: MSE reconstruction loss (Sec 1's
    'supervised and unsupervised learning')."""

    def _subspace_data(self, rng, n, dim=32, rank=4):
        basis = rng.normal(0, 1, (rank, dim))
        latent = rng.normal(0, 1, (n, rank))
        return ((latent @ basis) / rank + 0.5).clip(0, 1).astype(
            np.float32
        )

    def test_autoencoder_reduces_reconstruction_loss(self):
        from repro.dnn.recurrent import autoencoder

        net = autoencoder(input_size=32, bottleneck=6, depth=2)
        model = ReferenceModel(net, seed=0)
        rng = np.random.default_rng(1)
        data = self._subspace_data(rng, 48)

        def epoch_loss():
            total = 0.0
            for start in range(0, len(data), 8):
                batch = data[start:start + 8]
                for x in batch:
                    model.forward(x.reshape(32, 1, 1))
                    total += model.backward_mse(x)
                model.apply_gradients(1.0, scale=1 / len(batch))
            return total / len(data)

        losses = [epoch_loss() for _ in range(25)]
        assert losses[-1] < 0.8 * losses[0]
        assert losses[-1] < 0.09

    def test_mse_gradient_numeric(self):
        from repro.dnn.recurrent import autoencoder

        net = autoencoder(input_size=8, bottleneck=3, depth=1)
        model = ReferenceModel(net, seed=2)
        x = np.random.default_rng(3).uniform(0, 1, 8).astype(np.float32)
        model.forward(x.reshape(8, 1, 1))
        model.backward_mse(x * 0.5)
        analytic = model.state["reconstruction"].grad_weights.copy()
        w = model.state["reconstruction"].weights
        eps = 1e-4

        def loss_at():
            out = model.forward(x.reshape(8, 1, 1))
            return float(((out - x * 0.5) ** 2).mean())

        idx = (2, 1)
        orig = w[idx]
        w[idx] = orig + eps
        lp = loss_at()
        w[idx] = orig - eps
        lm = loss_at()
        w[idx] = orig
        assert (lp - lm) / (2 * eps) == pytest.approx(
            analytic[idx], rel=0.05, abs=1e-5
        )

    def test_mse_shape_mismatch_rejected(self):
        from repro.dnn.recurrent import autoencoder

        net = autoencoder(input_size=8, bottleneck=3, depth=1)
        model = ReferenceModel(net, seed=0)
        model.forward(np.zeros((8, 1, 1), np.float32))
        with pytest.raises(ShapeError):
            model.backward_mse(np.zeros(5))

    def test_mse_through_softmax_rejected(self):
        net = tiny_mlp(num_classes=3)
        model = ReferenceModel(net, seed=0)
        model.forward(np.zeros((16, 1, 1), np.float32))
        with pytest.raises(ShapeError):
            model.backward_mse(np.zeros(3))
