"""Tests for the power / processing-efficiency model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.power import (
    ComponentPower,
    PAPER_POWER_TABLE,
    PowerDraw,
    PowerModel,
    cluster_power_model,
    node_power_model,
)
from repro.errors import ConfigError


class TestComponentPower:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            ComponentPower("x", 10.0, 0.5, 0.1, 0.1)

    def test_positive_power(self):
        with pytest.raises(ConfigError):
            ComponentPower("x", 0.0, 0.5, 0.1, 0.4)

    def test_subsystem_watts(self):
        comp = ComponentPower("node", 1400.0, 0.5, 0.1, 0.4)
        assert comp.logic_w == pytest.approx(700.0)
        assert comp.memory_w == pytest.approx(140.0)
        assert comp.interconnect_w == pytest.approx(560.0)

    def test_paper_table_consistency(self):
        """Tile powers roll up into the chip power envelope: 288
        CompHeavy + 102 MemHeavy tiles fit inside the ConvLayer chip's
        57.8 W with room for the uncore."""
        comp = PAPER_POWER_TABLE["conv_comp_tile"].peak_w * 288
        mem = PAPER_POWER_TABLE["conv_mem_tile"].peak_w * 102
        chip = PAPER_POWER_TABLE["conv_chip"].peak_w
        assert comp + mem < chip
        assert comp + mem > 0.7 * chip

    def test_cluster_rolls_up_into_node(self):
        cluster = PAPER_POWER_TABLE["cluster"].peak_w
        node = PAPER_POWER_TABLE["node"].peak_w
        assert 4 * cluster < node
        assert 4 * cluster > 0.9 * node


class TestPowerModel:
    def test_idle_floor(self):
        model = node_power_model()
        idle = model.average(0.0, 0.0, 0.0)
        # Even idle, clocked logic and leaky memory burn power.
        assert idle.total_w > 0.25 * 1400 * 0.5  # logic floor alone

    def test_full_activity_reaches_peak(self):
        model = node_power_model()
        busy = model.average(1.0, 1.0, 1.0)
        assert busy.total_w == pytest.approx(1400.0, rel=0.01)

    def test_monotonic_in_each_utilization(self):
        model = node_power_model()
        base = model.average(0.3, 0.3, 0.3).total_w
        assert model.average(0.6, 0.3, 0.3).total_w > base
        assert model.average(0.3, 0.6, 0.3).total_w > base
        assert model.average(0.3, 0.3, 0.6).total_w > base

    def test_memory_mostly_leakage(self):
        """Sec 6.2: memory power remains largely constant."""
        model = node_power_model()
        lo = model.average(0.5, 0.5, 0.0).memory_w
        hi = model.average(0.5, 0.5, 1.0).memory_w
        assert hi / lo < 1.25

    def test_utilization_bounds_checked(self):
        model = node_power_model()
        with pytest.raises(ConfigError):
            model.average(1.5, 0.5, 0.5)
        with pytest.raises(ConfigError):
            model.average(0.5, -0.1, 0.5)

    def test_bad_parameters(self):
        comp = PAPER_POWER_TABLE["node"]
        with pytest.raises(ConfigError):
            PowerModel(comp, memory_leakage_fraction=1.5)
        with pytest.raises(ConfigError):
            PowerModel(comp, idle_activity_floor=-0.1)

    def test_efficiency(self):
        model = node_power_model()
        draw = model.average(0.5, 0.5, 0.5)
        eff = model.efficiency(100e12, draw)
        assert eff == pytest.approx(100e12 / draw.total_w)

    def test_cluster_model(self):
        model = cluster_power_model()
        busy = model.average(1.0, 1.0, 1.0)
        assert busy.total_w == pytest.approx(325.6, rel=0.01)

    @settings(max_examples=100, deadline=None)
    @given(
        compute=st.floats(0, 1),
        link=st.floats(0, 1),
        memory=st.floats(0, 1),
    )
    def test_draw_within_peak(self, compute, link, memory):
        model = node_power_model()
        draw = model.average(compute, link, memory)
        assert 0 < draw.total_w <= 1400.0 * 1.001

    def test_power_draw_fraction(self):
        comp = PAPER_POWER_TABLE["node"]
        draw = PowerDraw(350.0, 140.0, 210.0)
        assert draw.fraction_of(comp) == pytest.approx(0.5)
