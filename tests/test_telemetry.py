"""Tests for the telemetry subsystem: capture, export, CLI, overhead.

Covers the PR's acceptance criteria: a traced engine run produces valid
Chrome trace JSON, per-tile counters reconcile with the engine's
reported cycles, and the disabled path leaves results bit-identical.
"""

import json

import numpy as np
import pytest

from repro.bench import runner as bench_runner
from repro.cli import main
from repro.compiler.codegen import compile_forward
from repro.dnn.zoo import tiny_cnn
from repro.errors import SimulationError
from repro.functional import ReferenceModel
from repro.isa import assemble
from repro.sim.engine import Engine
from repro.telemetry import (
    NULL_TELEMETRY,
    CounterRegistry,
    Telemetry,
    analytical_tile_profile,
    capture,
    chrome_trace,
    counters_csv,
    engine_tile_profile,
    get_telemetry,
    set_telemetry,
    summarize,
    write_chrome_trace,
)
from tests.test_machine_engine import machine as small_machine


def tiny_compiled(seed=0):
    net = tiny_cnn(num_classes=5, in_size=12)
    model = ReferenceModel(net, seed=seed)
    return net, compile_forward(net, model, rows=2)


def tiny_image(net, seed=0):
    shape = net.input.output_shape
    rng = np.random.default_rng(seed)
    return rng.normal(
        0, 1, (shape.count, shape.height, shape.width)
    ).astype(np.float32)


class TestCore:
    def test_counter_registry(self):
        reg = CounterRegistry()
        reg.add("a", "x", 2)
        reg.add("a", "x", 3)
        reg.add("b", "x", 10)
        reg.record("b", "y", 7)
        reg.record("b", "y", 4)  # record snapshots, not accumulates
        assert reg.get("a", "x") == 5
        assert reg.get("b", "y") == 4
        assert reg.total("x") == 15
        assert reg.rows() == [("a", "x", 5.0), ("b", "x", 10.0),
                              ("b", "y", 4.0)]
        assert len(reg) == 3

    def test_null_handle_is_default_and_inert(self):
        tel = get_telemetry()
        assert tel is NULL_TELEMETRY
        assert not tel.enabled
        # Every operation is a silent no-op.
        tel.span("s", "c", ("p", "l"), 0, 1)
        tel.instant("i", "c", ("p", "l"), 0)
        tel.count("g", "n")
        tel.record("g", "n", 1)
        assert tel.events == ()

    def test_capture_installs_and_restores(self):
        before = get_telemetry()
        with capture() as tel:
            assert get_telemetry() is tel
            assert tel.enabled
            tel.span("work", "cat", ("p", "l"), 10, 5, detail=1)
        assert get_telemetry() is before
        (event,) = tel.events
        assert event.name == "work"
        assert event.end == 15

    def test_set_telemetry_none_restores_null(self):
        previous = set_telemetry(Telemetry())
        try:
            assert get_telemetry().enabled
        finally:
            set_telemetry(None)
            assert get_telemetry() is NULL_TELEMETRY
            set_telemetry(previous)


class TestEngineCapture:
    def test_chrome_trace_roundtrip_schema(self, tmp_path):
        """A traced engine run on the tiny network exports Chrome trace
        JSON whose events carry the ph/ts/dur/pid/tid fields."""
        net, compiled = tiny_compiled()
        with capture() as tel:
            compiled.run(tiny_image(net))
        path = tmp_path / "trace.json"
        write_chrome_trace(tel, str(path))

        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert events, "trace must not be empty"
        for record in events:
            assert record["ph"] in {"X", "i", "C", "M"}
            assert isinstance(record["pid"], int)
            assert isinstance(record["tid"], int)
            assert isinstance(record["name"], str)
            if record["ph"] == "X":
                assert isinstance(record["ts"], (int, float))
                assert record["dur"] >= 0
            if record["ph"] == "i":
                assert isinstance(record["ts"], (int, float))
        # Span events cover the instruction stream.
        spans = [r for r in events if r["ph"] == "X"]
        assert {r["cat"] for r in spans} == {"engine.instr"}
        # Metadata names every process and thread used by events.
        named_pids = {
            r["pid"] for r in events
            if r["ph"] == "M" and r["name"] == "process_name"
        }
        assert {r["pid"] for r in spans} <= named_pids

    def test_counters_reconcile_with_report(self):
        net, compiled = tiny_compiled()
        machine = compiled.build_machine()
        in_node = net.input
        image = tiny_image(net)
        for home in compiled.partition.blocks_of(in_node.name):
            machine.mem_tile(machine.mem_tile_id(0, home.row)).write(
                home.address,
                image[home.first_feature:
                      home.first_feature + home.feature_count],
                accumulate=False,
            )
        with capture() as tel:
            report = Engine(machine).run()

        # busy + stalled == total per tile; the slowest tile is the
        # engine's reported makespan.
        totals = []
        for tile in machine.comp_tiles.values():
            group = f"tile/{tile.tile_id}"
            busy = tel.counters.get(group, "busy_cycles")
            stalled = tel.counters.get(group, "stalled_cycles")
            total = tel.counters.get(group, "total_cycles")
            assert busy + stalled == total == tile.cycles
            totals.append(total)
        assert max(totals) == report.cycles
        assert tel.counters.get("engine", "total_cycles") == report.cycles
        assert (
            tel.counters.get("engine", "total_instructions")
            == report.instructions
        )
        # Tracker NACK counters mirror the report's blocked accesses.
        assert tel.counters.total("blocked_reads") == report.blocked_reads
        assert tel.counters.total("blocked_writes") == report.blocked_writes

        rows = engine_tile_profile(tel)
        assert rows and all(0 <= r.utilization <= 1 for r in rows)

    def test_tracker_events_carry_address_ranges(self):
        net, compiled = tiny_compiled()
        with capture() as tel:
            compiled.run(tiny_image(net))
        tracker_events = tel.events_in("engine.tracker")
        assert tracker_events
        kinds = {e.name for e in tracker_events}
        assert "tracker.arm" in kinds
        assert "tracker.expire" in kinds
        for event in tracker_events:
            start, end = event.args["addr_range"]
            assert 0 <= start < end
        block_events = tel.events_in("engine.block")
        assert block_events  # the tiny pipeline always blocks somewhere
        assert all("phase" in e.args for e in block_events)

    def test_disabled_path_is_bit_identical(self):
        """Without telemetry the engine's numerics and statistics match a
        traced run exactly."""
        net, compiled = tiny_compiled()
        image = tiny_image(net)
        out_plain, report_plain = compiled.run(image)
        with capture():
            out_traced, report_traced = compiled.run(image)
        assert np.array_equal(out_plain, out_traced)
        assert report_plain == report_traced


class TestDeadlockDiagnostics:
    def test_deadlock_names_phase_and_range(self):
        m = small_machine()
        prog = assemble(
            """
            MEMTRACK addr=32, port=0, size=4, num_updates=1, num_reads=1
            DMALOAD src_addr=32, src_port=0, dst_addr=0, dst_port=1, size=4, is_accum=0
            HALT
            """,
            tile="stuck",
        )
        m.load_program(prog)
        with pytest.raises(SimulationError) as excinfo:
            Engine(m).run()
        message = str(excinfo.value)
        assert "deadlock" in message
        assert "stuck" in message
        assert "[32, 36)" in message  # the offending address range
        assert "updating" in message  # the tracker phase it waits on
        assert "read" in message


class TestAnalyticalProfile:
    def test_tile_groups_sum_to_the_beat(self):
        from repro.arch import single_precision_node
        from repro.dnn import zoo
        from repro.sim import simulate

        result = simulate(zoo.load("AlexNet"), single_precision_node())
        rows = analytical_tile_profile(result)
        assert rows
        beat = result.bottleneck.cycles
        for row in rows:
            assert row.total_cycles == pytest.approx(beat)
            assert 0 <= row.utilization <= 1
        # The bottleneck group never stalls against its own beat.
        top = max(rows, key=lambda r: r.busy_cycles)
        assert top.stalled_cycles == pytest.approx(0.0)
        # Busy totals are consistent with reported throughput: the beat
        # bounds the per-copy training rate from above.
        node = result.mapping.node
        upper = max(
            result.mapping.copies, node.cluster_count
        ) * node.frequency_hz / beat
        assert result.training_images_per_s <= upper * 1.0001

    def test_simulate_emits_stage_spans_and_counters(self):
        from repro.arch import single_precision_node
        from repro.dnn import zoo
        from repro.sim import simulate

        with capture() as tel:
            result = simulate(zoo.load("AlexNet"), single_precision_node())
        spans = tel.events_in("perf.stage")
        assert len(spans) == len(result.stages)
        assert max(s.dur for s in spans) == result.bottleneck.cycles
        group = "perf/AlexNet"
        assert tel.counters.get(group, "train_images_per_s") == (
            pytest.approx(result.training_images_per_s)
        )
        assert tel.counters.get(group, "bottleneck_cycles") == (
            pytest.approx(result.bottleneck.cycles)
        )

    def test_mapping_and_sync_events(self):
        from repro.arch import single_precision_node
        from repro.compiler import map_network
        from repro.dnn import zoo
        from repro.sim.allreduce import minibatch_sync

        with capture() as tel:
            mapping = map_network(zoo.load("AlexNet"),
                                  single_precision_node())
            sync = minibatch_sync(mapping, minibatch=256)
        compiler_events = tel.events_in("compiler")
        names = {e.name for e in compiler_events}
        assert "step1.partition" in names
        assert "step3a.min_columns" in names
        assert "step6.weight_placement" in names
        sync_spans = tel.events_in("sync")
        assert {e.name for e in sync_spans} == {"sync.wheel", "sync.ring"}
        wheel = next(e for e in sync_spans if e.name == "sync.wheel")
        assert wheel.dur == pytest.approx(sync.wheel_cycles)


class TestExporters:
    def test_counters_csv(self):
        tel = Telemetry()
        tel.count("tile/a", "busy_cycles", 10)
        tel.record("tile/a", "dma_bytes", 256)
        text = counters_csv(tel)
        lines = text.strip().splitlines()
        assert lines[0] == "group,counter,value"
        assert "tile/a,busy_cycles,10" in lines
        assert "tile/a,dma_bytes,256" in lines

    def test_chrome_trace_of_empty_capture(self):
        doc = chrome_trace(Telemetry())
        assert doc["traceEvents"] == []

    def test_summarize(self):
        tel = Telemetry()
        tel.span("s", "cat", ("p", "l"), 0, 1)
        tel.instant("i", "cat", ("p", "l"), 0)
        text = summarize(tel)
        assert "2 events" in text and "1 spans" in text


class TestCli:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_unknown_network_exits_2_with_hint(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", "nonesuch"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "nonesuch" in err
        assert "AlexNet" in err  # the hint lists valid choices

    def test_unknown_subcommand_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2

    def test_trace_cli_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        assert main(["trace", "tiny", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert any(r["ph"] == "X" for r in doc["traceEvents"])
        assert "functional engine" in capsys.readouterr().out

    def test_profile_cli_prints_tile_counters(self, capsys):
        assert main(["profile", "tiny", "--counters"]) == 0
        out = capsys.readouterr().out
        assert "busy" in out and "stalled" in out and "blocked" in out
        assert "busy_cycles" in out  # counter registry rows

    def test_zoo_aliases(self):
        from repro.dnn import zoo

        assert zoo.resolve("alexnet") == "AlexNet"
        assert zoo.resolve("tiny") == "TinyCNN"
        assert zoo.resolve("vgg-a") == "VGG-A"
        with pytest.raises(KeyError):
            zoo.resolve("nonesuch")


class TestBenchCaches:
    def test_clear_caches_empties_the_compile_cache(self):
        from repro.sweep import get_cache

        bench_runner.cached_mapping("TinyCNN")
        assert len(get_cache()) > 0
        bench_runner.clear_caches()
        assert len(get_cache()) == 0
