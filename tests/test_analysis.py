"""Tests for the workload analysis (paper Sec 2.3 / Figs 1, 4, 5)."""

import pytest

from repro.dnn import zoo
from repro.dnn.analysis import (
    Kernel,
    LayerClass,
    Step,
    TRAINING_STEPS,
    classify_layer,
    evaluation_flops,
    kernel_summary,
    layer_class_summary,
    layer_macs,
    profile,
    profile_network,
    training_flops,
)
from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import LayerKind


@pytest.fixture(scope="module")
def overfeat():
    return zoo.overfeat_fast()


@pytest.fixture(scope="module")
def alexnet():
    return zoo.alexnet()


class TestLayerMacs:
    def test_conv_macs_hand_computed(self):
        b = NetworkBuilder("t")
        b.input(4, 8)
        b.conv(6, kernel=3, pad=1)
        net = b.build()
        # 6 output features of 8x8, each element needs 4*9 MACs.
        assert layer_macs(net["conv1"]) == 6 * 64 * 36

    def test_fc_macs(self):
        b = NetworkBuilder("t")
        b.input(4, 3)
        b.fc(10)
        net = b.build()
        assert layer_macs(net["fc1"]) == 4 * 9 * 10

    def test_pool_has_no_macs(self):
        b = NetworkBuilder("t")
        b.input(4, 8)
        b.pool(2)
        net = b.build()
        assert layer_macs(net["pool1"]) == 0


class TestProfiles:
    def test_fp_flops_are_twice_macs_plus_overheads(self, alexnet):
        node = alexnet["conv3"]
        prof = profile(node, Step.FP)
        conv = prof.flops_by_kernel[Kernel.ND_CONV]
        assert conv == 2 * layer_macs(node)
        assert prof.flops > conv  # accumulation + activation

    def test_training_is_about_three_evaluations(self, alexnet):
        ratio = training_flops(alexnet) / evaluation_flops(alexnet)
        assert 2.7 < ratio < 3.3

    def test_overfeat_evaluation_flops_match_paper(self, overfeat):
        # Paper Sec 1: ~3.3 giga operations per 231x231 image... counting
        # a MAC as 2 ops gives ~5.6 GFLOPs; connections are 2.8 GMACs.
        flops = evaluation_flops(overfeat)
        assert 4.5e9 < flops < 6.5e9

    def test_samp_bytes_per_flop_is_five(self, overfeat):
        pool = overfeat["pool1"]
        prof = profile(pool, Step.FP)
        assert prof.bytes_per_flop == pytest.approx(5.0, rel=0.01)

    def test_fc_bytes_per_flop_near_two(self, overfeat):
        prof = profile(overfeat["fc6"], Step.FP)
        assert 1.8 < prof.bytes_per_flop < 2.2

    def test_initial_conv_bytes_per_flop_order(self, overfeat):
        prof = profile(overfeat["conv1"], Step.FP)
        assert 0.003 < prof.bytes_per_flop < 0.02

    def test_samp_has_no_wg(self, overfeat):
        prof = profile(overfeat["pool1"], Step.WG)
        assert prof.flops == 0

    def test_half_precision_halves_bytes(self, overfeat):
        sp = profile(overfeat["conv2"], Step.FP, dtype_bytes=4)
        hp = profile(overfeat["conv2"], Step.FP, dtype_bytes=2)
        assert hp.bytes_total == sp.bytes_total // 2
        assert hp.flops == sp.flops


class TestNetworkProfile:
    def test_step_flops_sum_to_training(self, alexnet):
        prof = profile_network(alexnet)
        assert prof.training_flops == sum(
            prof.step_flops(s) for s in TRAINING_STEPS
        )

    def test_kernel_flops_cover_total(self, alexnet):
        prof = profile_network(alexnet)
        assert sum(prof.kernel_flops().values()) == prof.training_flops

    def test_fig1_growth_2012_to_2015(self):
        """Fig 1: >10x growth in evaluation FLOPs from AlexNet to VGG-E."""
        small = evaluation_flops(zoo.alexnet())
        large = evaluation_flops(zoo.vgg_e())
        assert large / small > 10


class TestLayerClasses:
    def test_overfeat_classes(self, overfeat):
        assert classify_layer(overfeat["conv1"]) is LayerClass.INITIAL_CONV
        assert classify_layer(overfeat["conv2"]) is LayerClass.INITIAL_CONV
        assert classify_layer(overfeat["conv4"]) is LayerClass.MID_CONV
        assert classify_layer(overfeat["fc6"]) is LayerClass.FC
        assert classify_layer(overfeat["pool1"]) is LayerClass.SAMP

    def test_fig4_flops_split(self, overfeat):
        """Fig 4: initial CONV ~16%, mid CONV ~80%, FC small, SAMP tiny."""
        summary = layer_class_summary(overfeat)
        total = sum(s.flops_total for s in summary.values())
        frac = {
            cls: s.flops_total / total for cls, s in summary.items()
        }
        assert 0.08 < frac[LayerClass.INITIAL_CONV] < 0.30
        assert 0.55 < frac[LayerClass.MID_CONV] < 0.90
        assert frac[LayerClass.FC] < 0.15
        assert frac[LayerClass.SAMP] < 0.01

    def test_fig4_bytes_per_flop_ordering(self, overfeat):
        """B/F grows initial CONV -> mid CONV -> FC (Fig 4)."""
        summary = layer_class_summary(overfeat)
        bf = {c: s.bytes_per_flop_fp_bp for c, s in summary.items()}
        assert bf[LayerClass.INITIAL_CONV] < bf[LayerClass.MID_CONV]
        assert bf[LayerClass.MID_CONV] < bf[LayerClass.FC]
        assert bf[LayerClass.FC] < bf[LayerClass.SAMP]


class TestKernelSummary:
    def test_fig5_shape(self):
        """Fig 5: nD-conv ~93% of FLOPs at low B/F; matmul ~3% at ~2;
        everything else <~5% with high B/F."""
        nets = [zoo.alexnet(), zoo.vgg_a(), zoo.overfeat_fast()]
        summary = kernel_summary(nets)
        conv_frac, conv_bf = summary[Kernel.ND_CONV]
        mm_frac, mm_bf = summary[Kernel.MATMUL]
        samp_frac, samp_bf = summary[Kernel.SAMPLING]
        assert conv_frac > 0.85
        assert conv_bf < 0.5
        assert 0.005 < mm_frac < 0.08
        assert 1.0 < mm_bf < 3.0
        assert samp_frac < 0.01
        assert samp_bf == pytest.approx(5.0, rel=0.05)

    def test_fractions_sum_to_one(self):
        summary = kernel_summary([zoo.alexnet()])
        assert sum(f for f, _ in summary.values()) == pytest.approx(1.0)
