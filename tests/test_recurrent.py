"""Tests for RNN / LSTM / autoencoder topologies and their primitives."""

import numpy as np
import pytest

from repro.arch import single_precision_node
from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import (
    Activation,
    ActivationSpec,
    EltwiseMulSpec,
    FeatureShape,
    LayerKind,
    SliceSpec,
)
from repro.dnn.recurrent import autoencoder, unrolled_lstm, unrolled_rnn
from repro.errors import ShapeError, TopologyError
from repro.functional import ReferenceModel
from repro.sim import simulate


def random_input(net, seed=0):
    shape = net.input.output_shape
    rng = np.random.default_rng(seed)
    return rng.normal(
        0, 1, (shape.count, shape.height, shape.width)
    ).astype(np.float32)


class TestNewPrimitives:
    def test_slice_shape_and_bounds(self):
        spec = SliceSpec("s", start=4, stop=10)
        out = spec.infer_shape((FeatureShape(16, 1, 1),))
        assert out.count == 6
        with pytest.raises(ShapeError):
            SliceSpec("s", start=4, stop=20).infer_shape(
                (FeatureShape(16, 1, 1),)
            )
        with pytest.raises(ShapeError):
            SliceSpec("s", start=5, stop=5).infer_shape(
                (FeatureShape(16, 1, 1),)
            )

    def test_eltwise_mul_shape(self):
        spec = EltwiseMulSpec("m")
        shape = FeatureShape(8, 1, 1)
        assert spec.infer_shape((shape, shape)) == shape
        with pytest.raises(ShapeError):
            spec.infer_shape((shape,))
        with pytest.raises(ShapeError):
            spec.infer_shape((shape, FeatureShape(4, 1, 1)))

    def test_activation_spec(self):
        spec = ActivationSpec("a", activation=Activation.TANH)
        shape = FeatureShape(8, 2, 2)
        assert spec.infer_shape((shape,)) == shape
        assert spec.weight_count((shape,)) == 0

    def test_slice_forward_backward(self):
        b = NetworkBuilder("slicer")
        b.input(6, 1)
        b.slice(2, 5)
        b.fc(3, activation=Activation.SOFTMAX)
        net = b.build()
        model = ReferenceModel(net, seed=0)
        x = random_input(net)
        model.forward(x)
        # The sliced features match the input range.
        np.testing.assert_allclose(
            model.state["slice1"].output, x[2:5]
        )
        loss = model.backward(1)
        assert np.isfinite(loss)

    def test_mul_gradient_product_rule(self):
        b = NetworkBuilder("gates")
        b.input(4, 1)
        a = b.fc(4, activation=Activation.SIGMOID, name="a")
        c = b.fc(4, activation=Activation.TANH, name="c",
                 inputs=["input"])
        b.multiply([a, c])
        b.fc(2, activation=Activation.SOFTMAX)
        net = b.build()
        model = ReferenceModel(net, seed=1)
        x = random_input(net, 3)
        model.forward(x)
        model.backward(0)
        analytic = model.state["a"].grad_weights.copy()
        w = model.state["a"].weights
        eps = 1e-4

        def loss_at():
            model.forward(x)
            p = model.state[net.output.name].output.reshape(-1)
            return -np.log(max(p[0], 1e-12))

        idx = (1, 2)
        orig = w[idx]
        w[idx] = orig + eps
        lp = loss_at()
        w[idx] = orig - eps
        lm = loss_at()
        w[idx] = orig
        assert (lp - lm) / (2 * eps) == pytest.approx(
            analytic[idx], rel=0.05, abs=1e-4
        )


class TestTopologies:
    def test_rnn_structure(self):
        net = unrolled_rnn(input_size=8, hidden_size=12, timesteps=3,
                           num_classes=5)
        # One FC per step plus the head.
        fcs = net.layers_of_kind(LayerKind.FC)
        assert len(fcs) == 4
        assert net.output.output_shape.count == 5
        # Per-step weights are distinct (no tying in hardware state).
        assert net.weight_count > 3 * 12 * 8

    def test_lstm_structure(self):
        net = unrolled_lstm(input_size=8, hidden_size=12, timesteps=3,
                            num_classes=5)
        fcs = net.layers_of_kind(LayerKind.FC)
        # init h/c + 4 gates x 2 cells + head.
        assert len(fcs) == 2 + 4 * 2 + 1
        assert len(net.layers_of_kind(LayerKind.ELTWISE)) > 0

    def test_autoencoder_symmetric(self):
        net = autoencoder(input_size=64, bottleneck=8, depth=3)
        assert net.output.output_shape.count == 64
        assert net["bottleneck"].output_shape.count == 8

    def test_validation(self):
        with pytest.raises(TopologyError):
            unrolled_rnn(timesteps=0)
        with pytest.raises(TopologyError):
            unrolled_lstm(timesteps=0)
        with pytest.raises(TopologyError):
            autoencoder(input_size=8, bottleneck=8)


class TestExecution:
    @pytest.mark.parametrize(
        "factory", [unrolled_rnn, unrolled_lstm]
    )
    def test_forward_backward_runs(self, factory):
        net = factory(input_size=6, hidden_size=8, timesteps=3,
                      num_classes=3)
        model = ReferenceModel(net, seed=0)
        out = model.forward(random_input(net))
        assert out.shape == (3,)
        assert out.sum() == pytest.approx(1.0)
        loss = model.backward(2)
        assert np.isfinite(loss)
        # Every gate's weights received a gradient.
        for name, st in model.state.items():
            if st.grad_weights is not None:
                assert np.abs(st.grad_weights).sum() > 0, name

    def test_lstm_learns(self):
        from repro.functional import SGDTrainer, make_synthetic_dataset

        net = unrolled_rnn(input_size=4, hidden_size=10, timesteps=3,
                           num_classes=3)
        model = ReferenceModel(net, seed=2)
        x, y = make_synthetic_dataset(net, samples=36, num_classes=3,
                                      seed=4)
        trainer = SGDTrainer(model, learning_rate=0.1, batch_size=6)
        first = trainer.train_epoch(x, y, 0)
        for epoch in range(1, 5):
            last = trainer.train_epoch(x, y, epoch)
        assert last.mean_loss < first.mean_loss


class TestMapping:
    @pytest.mark.parametrize(
        "factory", [unrolled_rnn, unrolled_lstm, autoencoder]
    )
    def test_maps_and_simulates(self, factory):
        """The Sec 1 claim: these topologies program onto ScaleDeep
        through the same compiler/simulator as the CNNs."""
        net = factory()
        result = simulate(net, single_precision_node())
        assert result.training_images_per_s > 0
        assert 0 < result.pe_utilization <= 1

    def test_recurrent_is_fc_side_only(self):
        from repro.compiler import map_network

        net = unrolled_rnn()
        mapping = map_network(net, single_precision_node())
        assert not mapping.conv_allocations
        assert len(mapping.fc_allocations) >= 4
