"""Tests for the MEMTRACK data-flow tracker semantics (Sec 3.2.4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SynchronizationError
from repro.sim.tracker import (
    AccessVerdict,
    RangeTracker,
    TrackerFile,
    TrackerPhase,
)


class TestRangeTracker:
    def test_lifecycle(self):
        t = RangeTracker(0, 16, num_updates=2, num_reads=3)
        assert t.phase is TrackerPhase.UPDATING
        assert t.try_read() is AccessVerdict.BLOCK
        assert t.try_write() is AccessVerdict.ALLOW
        assert t.try_write() is AccessVerdict.ALLOW
        assert t.phase is TrackerPhase.READABLE
        assert t.try_write() is AccessVerdict.BLOCK
        for _ in range(3):
            assert t.try_read() is AccessVerdict.ALLOW
        assert t.phase is TrackerPhase.EXPIRED
        # Expired: the range is free again.
        assert t.try_write() is AccessVerdict.ALLOW
        assert t.try_read() is AccessVerdict.ALLOW

    def test_zero_updates_immediately_readable(self):
        t = RangeTracker(0, 4, num_updates=0, num_reads=1)
        assert t.phase is TrackerPhase.READABLE
        assert t.try_read() is AccessVerdict.ALLOW
        assert t.phase is TrackerPhase.EXPIRED

    def test_overlap(self):
        t = RangeTracker(10, 10, 1, 1)
        assert t.overlaps(15, 2)
        assert t.overlaps(5, 6)
        assert not t.overlaps(20, 4)
        assert not t.overlaps(0, 10)

    def test_validation(self):
        with pytest.raises(SynchronizationError):
            RangeTracker(0, 0, 1, 1)
        with pytest.raises(SynchronizationError):
            RangeTracker(0, 4, -1, 1)


class TestTrackerFile:
    def test_arm_and_gate(self):
        f = TrackerFile()
        f.arm(0, 8, num_updates=1, num_reads=1)
        assert f.check_read(0, 8) is AccessVerdict.BLOCK
        assert f.blocked_reads == 1
        assert f.check_write(0, 8) is AccessVerdict.ALLOW
        assert f.check_read(2, 2) is AccessVerdict.ALLOW  # subrange hits

    def test_untracked_ranges_free(self):
        f = TrackerFile()
        assert f.check_read(100, 4) is AccessVerdict.ALLOW
        assert f.check_write(100, 4) is AccessVerdict.ALLOW

    def test_overlapping_arm_rejected(self):
        f = TrackerFile()
        f.arm(0, 8, 1, 1)
        with pytest.raises(SynchronizationError):
            f.arm(4, 8, 1, 1)

    def test_expired_trackers_reaped(self):
        f = TrackerFile()
        f.arm(0, 8, 1, 1)
        f.check_write(0, 8)
        f.check_read(0, 8)
        assert len(f) == 0
        # The freed range can be re-armed.
        f.arm(0, 8, 2, 2)
        assert len(f) == 1

    def test_capacity_enforced(self):
        f = TrackerFile(capacity=2)
        f.arm(0, 4, 1, 1)
        f.arm(8, 4, 1, 1)
        with pytest.raises(SynchronizationError):
            f.arm(16, 4, 1, 1)

    def test_capacity_validation(self):
        with pytest.raises(SynchronizationError):
            TrackerFile(capacity=0)

    def test_phase_of(self):
        f = TrackerFile()
        f.arm(0, 8, 1, 1)
        assert f.phase_of(0, 8) is TrackerPhase.UPDATING
        assert f.phase_of(50, 4) is None


class TestTrackerProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        num_updates=st.integers(0, 8),
        num_reads=st.integers(0, 8),
        ops=st.lists(st.sampled_from(["r", "w"]), max_size=40),
    )
    def test_invariant_reads_after_updates(self, num_updates, num_reads, ops):
        """Whatever the access order, no read succeeds before all
        updates arrive, and no post-update write succeeds before all
        reads drain — the MEMTRACK contract."""
        t = RangeTracker(0, 4, num_updates, num_reads)
        writes_seen = reads_seen = 0
        for op in ops:
            phase_before = t.phase
            if op == "r":
                verdict = t.try_read()
                if verdict is AccessVerdict.ALLOW and (
                    phase_before is not TrackerPhase.EXPIRED
                ):
                    reads_seen += 1
                    assert writes_seen == num_updates
            else:
                verdict = t.try_write()
                if verdict is AccessVerdict.ALLOW and (
                    phase_before is not TrackerPhase.EXPIRED
                ):
                    writes_seen += 1
                    assert writes_seen <= num_updates
        assert reads_seen <= num_reads
