"""Property-based tests over randomly generated networks.

Hypothesis builds random (but valid) network graphs and checks the
invariants that every subsystem must hold for *any* workload, not just
the zoo: shape/counting consistency, analysis conservation laws,
reference-model gradient sanity, mapping feasibility, and engine/golden
equivalence on random chains.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch import single_precision_node
from repro.compiler import map_network
from repro.compiler.codegen_dag import compile_dag_forward
from repro.dnn.analysis import (
    Step,
    TRAINING_STEPS,
    evaluation_flops,
    profile,
    profile_network,
    training_flops,
)
from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation, LayerKind, PoolMode
from repro.functional import ReferenceModel

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def random_chain(draw):
    """A random sequential CNN ending in a softmax FC head."""
    size = draw(st.sampled_from([8, 10, 12]))
    in_features = draw(st.integers(1, 3))
    b = NetworkBuilder("rand")
    b.input(in_features, size)
    for i in range(draw(st.integers(1, 3))):
        width = draw(st.integers(2, 6))
        kernel = draw(st.sampled_from([1, 3]))
        b.conv(width, kernel=kernel, pad=kernel // 2)
        if size >= 4 and draw(st.booleans()):
            b.pool(2, mode=PoolMode.AVG)
            size //= 2
    if draw(st.booleans()):
        b.fc(draw(st.integers(3, 8)))
    b.fc(draw(st.integers(2, 5)), activation=Activation.SOFTMAX)
    return b.build()


def random_image(net, seed=0):
    shape = net.input.output_shape
    rng = np.random.default_rng(seed)
    return rng.normal(
        0, 1, (shape.count, shape.height, shape.width)
    ).astype(np.float32)


class TestAnalysisInvariants:
    @SLOW
    @given(net=random_chain())
    def test_training_flops_bracket_evaluation(self, net):
        """Training runs FP + BP + WG: 2-3.5x one evaluation for CNNs
        (the first layer skips no work here, SAMP layers skip WG)."""
        ratio = training_flops(net) / evaluation_flops(net)
        assert 1.9 < ratio < 3.6

    @SLOW
    @given(net=random_chain())
    def test_profiles_nonnegative_and_consistent(self, net):
        prof = profile_network(net)
        assert prof.training_flops == sum(
            prof.step_flops(s) for s in TRAINING_STEPS
        )
        for per_step in prof.per_layer.values():
            for p in per_step.values():
                assert p.flops >= 0
                assert p.feature_bytes >= 0
                assert p.weight_bytes >= 0

    @SLOW
    @given(net=random_chain())
    def test_connection_count_positive_and_weighted(self, net):
        assert net.connection_count > 0
        assert net.weight_count > 0
        assert net.neuron_count > 0

    @SLOW
    @given(net=random_chain())
    def test_halving_precision_halves_bytes(self, net):
        for node in net:
            for step in Step:
                sp = profile(node, step, dtype_bytes=4)
                hp = profile(node, step, dtype_bytes=2)
                assert hp.bytes_total * 2 == sp.bytes_total
                assert hp.flops == sp.flops


class TestReferenceInvariants:
    @SLOW
    @given(net=random_chain(), seed=st.integers(0, 100))
    def test_softmax_output_is_distribution(self, net, seed):
        model = ReferenceModel(net, seed=0)
        out = model.forward(random_image(net, seed))
        assert out.shape == (net.output.output_shape.count,)
        assert out.sum() == pytest.approx(1.0, abs=1e-4)
        assert (out >= 0).all()

    @SLOW
    @given(net=random_chain())
    def test_loss_is_finite_and_gradients_flow(self, net):
        model = ReferenceModel(net, seed=1)
        model.forward(random_image(net, 3))
        loss = model.backward(0)
        assert np.isfinite(loss)
        # Every weighted layer's gradients must be finite; the first
        # layer's must be nonzero (the chain is fully connected).
        for name, state in model.state.items():
            if state.grad_weights is not None:
                assert np.isfinite(state.grad_weights).all(), name
        # Gradient must flow somewhere: the softmax head's bias gradient
        # is the (always nonzero) output error.  Earlier layers may
        # legitimately receive zero gradient when every ReLU on the
        # path is dead for this input — hypothesis finds such draws.
        head = net.output.name
        assert np.abs(model.state[head].grad_bias).sum() > 0

    @SLOW
    @given(net=random_chain())
    def test_update_reduces_loss_on_same_input(self, net):
        """One SGD step on a single input must not increase its loss
        (for a small enough step)."""
        model = ReferenceModel(net, seed=2)
        image = random_image(net, 7)
        model.forward(image)
        before = model.backward(0)
        model.apply_gradients(1e-3)
        model.forward(image)
        after = model.backward(0)
        assert after <= before + 1e-6


class TestMappingInvariants:
    NODE = single_precision_node()

    @SLOW
    @given(net=random_chain())
    def test_any_chain_maps(self, net):
        mapping = map_network(net, self.NODE)
        budget = (
            mapping.conv_chips_per_copy
            * self.NODE.cluster.conv_chip.cols
        )
        assert mapping.conv_columns_per_copy <= budget
        for alloc in mapping.conv_allocations.values():
            assert alloc.columns >= alloc.min_columns >= 1
        assert mapping.copies >= 1
        # Every layer is reachable through allocation_for.
        for node in net:
            if node.kind is not LayerKind.INPUT:
                assert mapping.allocation_for(node.name) is not None


class TestEngineEquivalence:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow, HealthCheck.data_too_large,
        ],
    )
    @given(net=random_chain(), rows=st.sampled_from([1, 2, 3]))
    def test_random_chains_match_golden_model(self, net, rows):
        """The DAG compiler + engine reproduce the golden model for any
        generated chain."""
        model = ReferenceModel(net, seed=3)
        compiled = compile_dag_forward(net, model, rows=rows)
        image = random_image(net, 11)
        want = model.forward(image)
        got, _ = compiled.run(image)
        np.testing.assert_allclose(got, want, atol=1e-4)


@st.composite
def random_dag(draw):
    """A random branchy network: trunk, 2-3 parallel conv branches
    joined by concat, optional residual add, softmax head."""
    b = NetworkBuilder("rand-dag")
    b.input(draw(st.integers(1, 3)), 8)
    trunk = b.conv(draw(st.integers(2, 5)), kernel=3, pad=1, name="trunk")
    branches = []
    for i in range(draw(st.integers(2, 3))):
        width = draw(st.integers(1, 4))
        kernel = draw(st.sampled_from([1, 3]))
        branches.append(b.conv(
            width, kernel=kernel, pad=kernel // 2, name=f"br{i}",
            inputs=[trunk],
        ))
    joined = b.concat(branches, name="join")
    if draw(st.booleans()):
        width = draw(st.integers(2, 4))
        proj = b.conv(width, kernel=1, name="proj", inputs=[joined])
        mirror = b.conv(width, kernel=1, name="mirror", inputs=[joined])
        joined = b.add([proj, mirror], name="res")
    b.global_pool(name="gp", inputs=[joined])
    b.fc(draw(st.integers(2, 4)), activation=Activation.SOFTMAX,
         name="head")
    return b.build()


class TestDagEngineEquivalence:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow, HealthCheck.data_too_large,
        ],
    )
    @given(net=random_dag())
    def test_random_dags_match_golden_model(self, net):
        """Branch/join graphs generated at random compile (with fully
        calibrated trackers) and match the golden model."""
        model = ReferenceModel(net, seed=5)
        compiled = compile_dag_forward(net, model, rows=2)
        image = random_image(net, 13)
        want = model.forward(image)
        got, _ = compiled.run(image)
        np.testing.assert_allclose(got, want, atol=1e-4)
