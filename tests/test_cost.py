"""Tests for the compiler cost model (cycles / utilization / traffic)."""

import pytest

from repro.arch.presets import FREQUENCY_HZ, conv_chip, fc_chip
from repro.compiler.cost import (
    StepCost,
    UtilizationCascade,
    layer_stage_cycles,
    step_cost,
)
from repro.dnn import zoo
from repro.dnn.analysis import Step
from repro.errors import MappingError


@pytest.fixture(scope="module")
def alexnet():
    return zoo.alexnet()


def cost(net, layer, step=Step.FP, cols=4, **kw):
    defaults = dict(
        weights_on_chip=True, dtype_bytes=4,
    )
    defaults.update(kw)
    return step_cost(
        FREQUENCY_HZ, conv_chip(), net[layer], step, cols,
        defaults.pop("dtype_bytes"), defaults.pop("weights_on_chip"),
        **defaults,
    )


class TestCycleScaling:
    def test_more_columns_never_slower(self, alexnet):
        prev = None
        for cols in (1, 2, 4, 8, 16):
            cycles = cost(alexnet, "conv3", cols=cols).cycles
            if prev is not None:
                assert cycles <= prev * 1.01
            prev = cycles

    def test_cycles_positive(self, alexnet):
        assert cost(alexnet, "conv1").cycles >= 1.0

    def test_compute_dominates_for_conv(self, alexnet):
        c = cost(alexnet, "conv2")
        assert c.bound_by == "compute"

    def test_offchip_weights_add_ext_traffic(self, alexnet):
        on = cost(alexnet, "conv3", weights_on_chip=True)
        off = cost(alexnet, "conv3", weights_on_chip=False)
        assert off.traffic.ext_mem_bytes > on.traffic.ext_mem_bytes
        assert off.ext_mem_cycles > on.ext_mem_cycles

    def test_training_stages_feature_traffic(self, alexnet):
        train = cost(alexnet, "conv3", store_features_offchip=True)
        evaln = cost(alexnet, "conv3", store_features_offchip=False)
        assert train.traffic.ext_mem_bytes > evaln.traffic.ext_mem_bytes

    def test_tile_multiplier_speeds_compute(self, alexnet):
        base = cost(alexnet, "conv2")
        wide = cost(alexnet, "conv2", step_tile_multiplier=3)
        assert wide.compute_cycles < base.compute_cycles
        assert wide.compute_cycles > base.compute_cycles / 3.5

    def test_weight_batch_amortizes_fc(self):
        net = zoo.alexnet()
        chip = fc_chip()
        one = step_cost(
            FREQUENCY_HZ, chip, net["fc6"], Step.FP, 4, 4,
            weights_on_chip=False, weight_reuse_batch=1,
        )
        many = step_cost(
            FREQUENCY_HZ, chip, net["fc6"], Step.FP, 4, 4,
            weights_on_chip=False, weight_reuse_batch=64,
        )
        assert many.traffic.ext_mem_bytes < one.traffic.ext_mem_bytes / 32


class TestUtilizationCascade:
    def test_factors_in_unit_interval(self, alexnet):
        for layer in ("conv1", "conv2", "conv5"):
            for step in Step:
                u = cost(alexnet, layer, step=step).utilization
                assert 0 < u.feature_distribution <= 1
                assert 0 < u.array_residue <= 1
                assert 0 < u.instruction_overhead <= 1
                assert 0 < u.achieved <= 1

    def test_achieved_is_product(self):
        u = UtilizationCascade(0.9, 0.5, 0.8)
        assert u.achieved == pytest.approx(0.36)

    def test_feature_splitting_rescues_few_features(self):
        """When features < tiles, STEP4's row splitting keeps the tiles
        busy — utilization must not collapse toward features/tiles."""
        net = zoo.vgg_a()
        c = cost(net, "conv1", cols=16)  # 64 features over 96+ tiles
        assert c.utilization.feature_distribution > 0.5


class TestValidation:
    def test_zero_columns(self, alexnet):
        with pytest.raises(MappingError):
            cost(alexnet, "conv1", cols=0)

    def test_bad_multipliers(self, alexnet):
        with pytest.raises(MappingError):
            cost(alexnet, "conv1", step_tile_multiplier=0)
        with pytest.raises(MappingError):
            cost(alexnet, "conv1", weight_reuse_batch=0)


class TestStageCycles:
    def test_training_at_least_evaluation(self, alexnet):
        train = layer_stage_cycles(
            FREQUENCY_HZ, conv_chip(), alexnet["conv2"], 4, 4,
            weights_on_chip=True, training=True,
        )
        evaln = layer_stage_cycles(
            FREQUENCY_HZ, conv_chip(), alexnet["conv2"], 4, 4,
            weights_on_chip=True, training=False,
        )
        assert train >= evaln

    def test_bound_by_labels(self, alexnet):
        c = cost(alexnet, "conv2")
        assert c.bound_by in (
            "compute", "sfu", "comp-mem-link", "mem-mem-link", "ext-mem"
        )
