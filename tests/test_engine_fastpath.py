"""Fast-path equivalence: the pre-decoded engine vs the legacy interpreter.

The fast path decodes each tile's program once into a flat op table and
the batched path vectorises the decoded ops across a minibatch; both
must be observationally identical to the legacy per-round interpreter —
same outputs (bit-for-bit in single-image mode), same RunReport, same
fault behaviour.  These tests pin that contract per small zoo network.
"""

import types

import numpy as np
import pytest

from repro.arch.presets import conv_chip
from repro.compiler.codegen_dag import compile_dag_forward, run_dag_batch
from repro.dnn.zoo import lenet5, tiny_cnn, tiny_mlp
from repro.errors import SimulationError
from repro.functional.reference import ReferenceModel
from repro.isa import assemble
from repro.sim.engine import Engine
from repro.sim.machine import Machine

NETS = {
    "TinyMLP": lambda: tiny_mlp(num_classes=4, in_features=8, hidden=12),
    "TinyCNN-8": lambda: tiny_cnn(num_classes=4, in_size=8),
    "TinyCNN-16": lambda: tiny_cnn(num_classes=4, in_size=16),
    "LeNet-5": lenet5,
}

BATCH = 3


def _image(net, seed=0):
    s = net.input.output_shape
    return np.random.default_rng(seed).normal(
        0, 1, (s.count, s.height, s.width)
    ).astype(np.float32)


@pytest.fixture(scope="module", params=sorted(NETS))
def case(request):
    """One compiled network with legacy, fast, fused and batched runs."""
    net = NETS[request.param]()
    model = ReferenceModel(net, seed=0)
    compiled = compile_dag_forward(net, model, rows=2)
    image = _image(net)
    slow_out, slow_report = compiled.run(image, fast=False)
    fast_out, fast_report = compiled.run(image, fast=True, fused=False)
    fused_out, fused_report = compiled.run(image, fast=True, fused=True)
    images = np.stack([_image(net, seed=i) for i in range(BATCH)])
    batch_out, batch_report = compiled.run_batch(images)
    per_image = [compiled.run(img, fast=False)[0] for img in images]
    return types.SimpleNamespace(
        name=request.param, net=net, compiled=compiled,
        slow_out=slow_out, slow_report=slow_report,
        fast_out=fast_out, fast_report=fast_report,
        fused_out=fused_out, fused_report=fused_report,
        images=images, batch_out=batch_out, batch_report=batch_report,
        per_image=per_image,
    )


class TestFastPathEquivalence:
    def test_outputs_bit_identical(self, case):
        """The fast closures replay the legacy numpy calls exactly, so
        single-image outputs match bit for bit — not just approximately."""
        assert np.array_equal(case.fast_out, case.slow_out), case.name

    def test_reports_identical(self, case):
        assert case.fast_report == case.slow_report, case.name

    def test_report_is_nontrivial(self, case):
        assert case.fast_report.instructions > 0
        assert case.fast_report.cycles > 0
        assert case.fast_report.rounds > 0


class TestSuperopFusion:
    """Fused (superop) execution vs the per-instruction fast path.

    The contract: outputs, instruction counts and busy cycles (the sum
    of decoded per-instruction costs) are bit-identical; only the
    makespan-side stats (cycles/rounds/blocked counts) may shrink, as
    superops compress tracker-stall rounds away.
    """

    def test_fused_outputs_bit_identical(self, case):
        assert np.array_equal(case.fused_out, case.fast_out), case.name

    def test_fused_report_reconciles(self, case):
        assert case.fused_report.instructions == (
            case.fast_report.instructions
        ), case.name
        assert case.fused_report.busy_cycles == (
            case.fast_report.busy_cycles
        ), case.name

    def test_fused_makespan_no_worse(self, case):
        assert case.fused_report.cycles <= case.fast_report.cycles
        assert case.fused_report.rounds <= case.fast_report.rounds

    def test_programs_carry_superops(self, case):
        assert any(p.superops for p in case.compiled.programs), case.name

    def test_fusion_flag_separates_cache_keys(self):
        """fuse=True and fuse=False artifacts must not collide in the
        compile cache: a collision would hand the fused plan to a
        caller that asked for the plain fast path."""
        from repro.sweep.cache import (
            CompileCache, cached_dag_forward_codegen,
        )

        net = NETS["TinyCNN-8"]()
        cache = CompileCache()
        fused = cached_dag_forward_codegen(net, cache=cache, fuse=True)
        plain = cached_dag_forward_codegen(net, cache=cache, fuse=False)
        assert any(p.superops for p in fused.programs)
        assert all(not p.superops for p in plain.programs)

    def test_fallback_counters_name_opcode_and_reason(self):
        """Instructions the decoder refuses are counted per opcode with
        the refusal reason (satellite: no more silent bare-except)."""
        from repro.telemetry import capture

        net = NETS["TinyCNN-8"]()
        compiled = compile_dag_forward(net, ReferenceModel(net, seed=0))
        with capture() as tel:
            compiled.run(_image(net), fast=True, fused=False)
        fallbacks = tel.counters.group("engine.fallback")
        assert fallbacks, "expected at least the HALT scalar fallbacks"
        assert all(":" in key for key in fallbacks)
        assert any(key.endswith(":scalar-control") for key in fallbacks)

    def test_unexpected_decode_error_surfaces(self, monkeypatch):
        """Only the legacy interpreter's own error types may fall back;
        an unexpected exception is an engine bug and must propagate
        (the old bare ``except Exception`` swallowed it)."""
        net = NETS["TinyCNN-8"]()
        compiled = compile_dag_forward(net, ReferenceModel(net, seed=0))

        def boom(self, instr, tile_id):
            raise RuntimeError("engine bug")

        monkeypatch.setattr(Engine, "_decode_data", boom)
        with pytest.raises(RuntimeError, match="engine bug"):
            compiled.run(_image(net), fast=True, fused=False)


class TestBatchedExecution:
    def test_batch_report_matches_single_image(self, case):
        """Cycle accounting models one image's program: the batched
        report is identical to the single-image fast report."""
        assert case.batch_report == case.fast_report, case.name

    def test_batch_outputs_match_legacy_per_image(self, case):
        """Batched outputs agree with running each image through the
        legacy interpreter (within float32 BLAS reduction-order noise)."""
        assert case.batch_out.shape[0] == BATCH
        for i, expected in enumerate(case.per_image):
            np.testing.assert_allclose(
                case.batch_out[i], expected, rtol=0, atol=1e-5,
                err_msg=f"{case.name} image {i}",
            )

    def test_batch_first_image_matches_fast(self, case):
        np.testing.assert_allclose(
            case.batch_out[0], case.fast_out, rtol=0, atol=1e-5
        )

    def test_run_dag_batch_entry_point(self):
        net = tiny_mlp(num_classes=4, in_features=8, hidden=12)
        model = ReferenceModel(net, seed=0)
        images = np.stack([_image(net, seed=i) for i in range(2)])
        out, report = run_dag_batch(net, model, images)
        assert out.shape == (2, 4)
        assert report.instructions > 0

    def test_run_batch_rejects_single_image(self):
        net = tiny_mlp(num_classes=4, in_features=8, hidden=12)
        compiled = compile_dag_forward(net, ReferenceModel(net, seed=0))
        with pytest.raises(SimulationError):
            compiled.run_batch(_image(net).reshape(-1))


def _faults(rate=0.5, seed=7):
    return types.SimpleNamespace(
        dma_flip_rate=rate, spec=types.SimpleNamespace(seed=seed)
    )


def _run_with_faults(compiled, image, fast):
    """CompiledForward.run, but with a fault-injecting engine."""
    machine = compiled.build_machine()
    for home in compiled.partition.blocks_of(compiled.network.input.name):
        tile = machine.mem_tile(machine.mem_tile_id(0, home.row))
        tile.write(
            home.address,
            image[
                home.first_feature
                : home.first_feature + home.feature_count
            ],
            accumulate=False,
        )
    engine = Engine(machine, faults=_faults(), fast=fast)
    report = engine.run()
    out_col = compiled.partition.column_of[compiled.network.output.name]
    out = np.concatenate([
        machine.mem_tile(machine.mem_tile_id(out_col, home.row))
        .read(home.address, home.feature_count * home.feature_words)
        .copy()
        for home in compiled.output_blocks
    ])
    return out, report, engine.dma_flips


class TestFaultInteraction:
    def test_dma_flip_stream_identical_fast_vs_legacy(self):
        """The fast path draws DMA fault flips from the same RNG stream
        in the same order, so a faulty run is bit-identical either way."""
        net = tiny_cnn(num_classes=4, in_size=8)
        compiled = compile_dag_forward(net, ReferenceModel(net, seed=0))
        image = _image(net)
        slow_out, slow_report, slow_flips = _run_with_faults(
            compiled, image, fast=False
        )
        fast_out, fast_report, fast_flips = _run_with_faults(
            compiled, image, fast=True
        )
        assert slow_flips == fast_flips > 0
        assert fast_report == slow_report
        assert np.array_equal(fast_out, slow_out)

    def test_make_batch_rejects_dma_faults(self):
        machine = Machine(conv_chip(), 1, 1)
        engine = Engine(machine, faults=_faults())
        with pytest.raises(SimulationError):
            engine.make_batch(2)

    def test_make_batch_requires_fast(self):
        engine = Engine(Machine(conv_chip(), 1, 1), fast=False)
        with pytest.raises(SimulationError):
            engine.make_batch(2)

    def test_make_batch_rejects_empty(self):
        engine = Engine(Machine(conv_chip(), 1, 1))
        with pytest.raises(SimulationError):
            engine.make_batch(0)


INDIRECT_DMA = """
LDRI rd=2, value=10
DMALOAD src_addr=r2, src_port=0, dst_addr=0, dst_port=1, size=2, is_accum=0
HALT
"""


class TestRegisterIndirectFallback:
    def _machine(self):
        m = Machine(conv_chip(), 3, 1)
        m.mem_tile(0).write(
            10, np.array([7.0, 8.0], np.float32), False
        )
        m.load_program(assemble(INDIRECT_DMA, tile="t"))
        return m

    def test_fast_mode_falls_back(self):
        """Register-indirect data ops run through the legacy interpreter
        inside a fast-mode run and still produce the right answer."""
        m = self._machine()
        Engine(m, fast=True).run()
        assert m.mem_tile(1).read(0, 2).tolist() == [7.0, 8.0]

    def test_batch_mode_refuses_indirect_data_ops(self):
        """A batched run cannot take the single-image fallback for data
        instructions: it must refuse loudly, not corrupt the batch."""
        m = self._machine()
        engine = Engine(m, fast=True)
        engine.make_batch(2)
        with pytest.raises(SimulationError, match="single-image"):
            engine.run()


class TestSpeedup:
    def test_batched_path_beats_legacy(self):
        """The headline claim, smoke-tested conservatively: batched
        execution amortises to well under the legacy per-image cost
        (full measurement lives in `repro validate`)."""
        from repro.sim.validation import measure_speedup

        result = measure_speedup(lenet5(), batch=8, repeats=2)
        assert result.batch_speedup > 2.0, result.describe()
        assert result.describe().startswith("LeNet-5")
