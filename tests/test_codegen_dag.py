"""DAG code generation: branches, joins and gates on the engine."""

import numpy as np
import pytest

from repro.compiler.codegen_dag import compile_dag_forward
from repro.compiler.trackers import audit_trackers
from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation, PoolMode
from repro.dnn.recurrent import unrolled_lstm, unrolled_rnn
from repro.dnn.zoo import tiny_cnn
from repro.errors import MappingError
from repro.functional import ReferenceModel


def model_with_biases(net, seed=3):
    model = ReferenceModel(net, seed=seed)
    for st in model.state.values():
        if st.bias is not None:
            st.bias += np.linspace(-0.1, 0.1, st.bias.size).astype(
                np.float32
            )
    return model


def random_image(net, seed=0):
    shape = net.input.output_shape
    rng = np.random.default_rng(seed)
    return rng.normal(
        0, 1, (shape.count, shape.height, shape.width)
    ).astype(np.float32)


def mini_inception():
    b = NetworkBuilder("MiniInception")
    b.input(3, 12)
    trunk = b.conv(8, kernel=3, pad=1, name="stem")
    p1 = b.conv(4, kernel=1, name="b1x1", inputs=[trunk])
    r3 = b.conv(4, kernel=1, name="b3r", inputs=[trunk])
    p3 = b.conv(6, kernel=3, pad=1, name="b3x3", inputs=[r3])
    pool = b.pool(2, mode=PoolMode.AVG, name="bpool", inputs=[trunk])
    # The pool branch halves the extent; a stride-2 1x1 conv on the
    # other branches would be needed to concat — keep branches aligned.
    pp = b.conv(3, kernel=1, name="bpp", inputs=[pool])
    up = b.conv(3, kernel=3, pad=1, name="bpp2", inputs=[pp])
    cat = b.concat([p1, p3], name="inc_out")
    b.pool(2, mode=PoolMode.AVG, name="pool", inputs=[cat])
    b.fc(5, activation=Activation.SOFTMAX, name="head")
    return b.build()


def mini_resnet():
    b = NetworkBuilder("MiniResNet")
    b.input(3, 10)
    trunk = b.conv(6, kernel=3, pad=1, name="stem")
    c1 = b.conv(6, kernel=3, pad=1, name="rb_conv1", inputs=[trunk])
    c2 = b.conv(
        6, kernel=3, pad=1, activation=Activation.NONE, name="rb_conv2",
        inputs=[c1],
    )
    out = b.add([c2, trunk], name="rb_add")
    b.global_pool(name="gp", inputs=[out])
    b.fc(4, activation=Activation.SOFTMAX, name="head")
    return b.build()


class TestDagMatchesGoldenModel:
    @pytest.mark.parametrize("rows", [1, 2, 3])
    def test_inception_block(self, rows):
        net = mini_inception()
        model = model_with_biases(net)
        compiled = compile_dag_forward(net, model, rows=rows)
        img = random_image(net)
        got, _ = compiled.run(img)
        np.testing.assert_allclose(got, model.forward(img), atol=1e-4)

    def test_residual_block(self):
        net = mini_resnet()
        model = model_with_biases(net)
        compiled = compile_dag_forward(net, model, rows=2)
        img = random_image(net)
        got, _ = compiled.run(img)
        np.testing.assert_allclose(got, model.forward(img), atol=1e-4)

    def test_unrolled_rnn(self):
        """Slices, concats and tanh FC cells on the engine."""
        net = unrolled_rnn(input_size=5, hidden_size=7, timesteps=3,
                           num_classes=3)
        model = model_with_biases(net)
        compiled = compile_dag_forward(net, model, rows=2)
        img = random_image(net, seed=4)
        got, _ = compiled.run(img)
        np.testing.assert_allclose(got, model.forward(img), atol=1e-5)

    def test_unrolled_lstm(self):
        """The full LSTM cell — sigmoid/tanh gates, element-wise
        products, cell-state adds — as compiled ISA programs."""
        net = unrolled_lstm(input_size=4, hidden_size=6, timesteps=3,
                            num_classes=3)
        model = model_with_biases(net)
        compiled = compile_dag_forward(net, model, rows=2)
        img = random_image(net, seed=5)
        got, _ = compiled.run(img)
        np.testing.assert_allclose(got, model.forward(img), atol=1e-5)

    def test_sequential_networks_also_compile(self):
        """The DAG compiler subsumes the sequential case."""
        net = tiny_cnn(num_classes=4, in_size=8)
        model = model_with_biases(net)
        compiled = compile_dag_forward(net, model, rows=2)
        img = random_image(net, seed=6)
        got, _ = compiled.run(img)
        np.testing.assert_allclose(got, model.forward(img), atol=1e-4)


class TestCalibratedTrackers:
    def test_all_trackers_calibrated_exactly(self):
        """Placeholder trackers were rewritten to the exact statically
        counted accesses (re-audit is a fixed point)."""
        net = mini_inception()
        model = model_with_biases(net)
        compiled = compile_dag_forward(net, model, rows=2)
        audit = audit_trackers(compiled.programs)
        assert audit["mismatches"] == 0
        assert audit["trackers"] > 10

    def test_multi_consumer_fanout_counts(self):
        """The trunk of the inception block feeds three consumers; its
        output tracker must absorb all of their reads (this is exactly
        the case hand bookkeeping gets wrong)."""
        from repro.isa.instructions import Opcode

        net = mini_inception()
        model = model_with_biases(net)
        compiled = compile_dag_forward(net, model, rows=2)
        stem_trackers = [
            instr
            for prog in compiled.programs
            if prog.tile.startswith("stem@")
            for instr in prog
            if instr.opcode is Opcode.MEMTRACK
            and "stem outputs" in instr.comment
        ]
        assert stem_trackers
        # Three consuming layers stage the trunk (b1x1, b3r, bpool),
        # each from every one of its blocks.
        for tracker in stem_trackers:
            assert tracker.operand("num_reads") >= 3


def padded_pool_net(mode, activation=Activation.RELU, pad=1, window=3):
    b = NetworkBuilder(f"padpool-{mode.value}")
    b.input(3, 12)
    b.conv(8, kernel=3, pad=1, activation=activation)
    b.pool(window, stride=2, pad=pad, mode=mode)
    b.conv(6, kernel=3, pad=1)
    b.global_pool()
    b.fc(4, activation=Activation.SOFTMAX)
    return b.build()


class TestPaddedPooling:
    """Padded pools lower through a zero-preloaded staging plane; the
    zero border is exactly the reference's AVG fill, and stands in for
    the -inf MAX fill when the input is provably non-negative."""

    @pytest.mark.parametrize("mode", [PoolMode.AVG, PoolMode.MAX])
    def test_matches_reference(self, mode):
        net = padded_pool_net(mode)
        model = model_with_biases(net)
        compiled = compile_dag_forward(net, model)
        image = random_image(net)
        out, _ = compiled.run(image)
        np.testing.assert_allclose(
            out, model.forward(image), rtol=0, atol=1e-5
        )

    @pytest.mark.parametrize("mode", [PoolMode.AVG, PoolMode.MAX])
    def test_fused_bit_identical(self, mode):
        net = padded_pool_net(mode)
        compiled = compile_dag_forward(net, model_with_biases(net))
        image = random_image(net)
        fused, _ = compiled.run(image, fused=True)
        plain, _ = compiled.run(image, fused=False)
        assert np.array_equal(fused, plain)

    def test_padded_avg_allowed_on_signed_input(self):
        """AVG needs no sign proof: zero borders are always correct."""
        net = padded_pool_net(PoolMode.AVG, activation=Activation.TANH)
        compiled = compile_dag_forward(net, model_with_biases(net))
        out, _ = compiled.run(random_image(net))
        assert np.all(np.isfinite(out))

    def test_padded_max_needs_nonnegative_input(self):
        """A zero border could win a MAX window over a signed input,
        so the legalizer demands a non-negativity proof."""
        net = padded_pool_net(PoolMode.MAX, activation=Activation.TANH)
        with pytest.raises(MappingError, match="non-negative"):
            compile_dag_forward(net, ReferenceModel(net))

    def test_pad_must_stay_below_window(self):
        """pad >= window would create all-border windows whose value
        the staging scheme cannot represent."""
        net = padded_pool_net(PoolMode.AVG, pad=3, window=3)
        with pytest.raises(MappingError, match="smaller"):
            compile_dag_forward(net, ReferenceModel(net))


class TestScope:
    def test_three_way_product_rejected(self):
        b = NetworkBuilder("triple")
        b.input(4, 1)
        a = b.fc(4, name="a")
        c = b.fc(4, name="c", inputs=["input"])
        d = b.fc(4, name="d", inputs=["input"])
        b.multiply([a, c, d])
        net = b.build()
        with pytest.raises(MappingError):
            compile_dag_forward(net, ReferenceModel(net))


class TestTableAndGroupedConvs:
    def test_lenet5_with_connection_table_on_engine(self):
        """LeNet-5 — including C3's classic connection table — compiled
        to ISA programs and executed end to end."""
        from repro.dnn.zoo import lenet5

        net = lenet5(num_classes=10)
        model = ReferenceModel(net, seed=1)
        compiled = compile_dag_forward(net, model, rows=2)
        img = np.random.default_rng(0).normal(
            0, 1, (1, 32, 32)
        ).astype(np.float32)
        want = model.forward(img)
        got, report = compiled.run(img)
        np.testing.assert_allclose(got, want, atol=1e-4)
        # The C3 table skips disconnected pairs: fewer NDCONVs than the
        # dense 6x16 product would need.
        from repro.isa.instructions import Opcode

        c3_convs = sum(
            1
            for prog in compiled.programs
            if prog.tile.startswith("c3@")
            for instr in prog
            if instr.opcode is Opcode.NDCONV
        )
        assert c3_convs == 60  # sum of table row lengths, not 96

    def test_grouped_conv_on_engine(self):
        b = NetworkBuilder("grouped")
        b.input(4, 8)
        b.conv(6, kernel=3, pad=1, groups=2)
        b.fc(3, activation=Activation.SOFTMAX)
        net = b.build()
        model = model_with_biases(net)
        compiled = compile_dag_forward(net, model, rows=2)
        img = random_image(net)
        got, _ = compiled.run(img)
        np.testing.assert_allclose(got, model.forward(img), atol=1e-4)

    def test_alexnet_style_grouped_block(self):
        """A grouped 5x5 stage like AlexNet's conv2 (two-GPU split)."""
        b = NetworkBuilder("alexblock")
        b.input(4, 12)
        b.conv(8, kernel=3, pad=1, name="c1")
        b.conv(8, kernel=5, pad=2, groups=2, name="c2")
        b.global_pool()
        b.fc(4, activation=Activation.SOFTMAX)
        net = b.build()
        model = model_with_biases(net)
        compiled = compile_dag_forward(net, model, rows=2)
        img = random_image(net, seed=8)
        got, _ = compiled.run(img)
        np.testing.assert_allclose(got, model.forward(img), atol=1e-4)
