"""Tests for ``repro stats``: report collection, tile-profile parity,
regression baselines, the CLI verb, and the HTML dashboard.

Pins the PR's acceptance criteria: snapshots bit-identical across
reruns and sweep worker counts, ``--compare`` exits 2 on an injected
regression and 0 on a faithful baseline, and the dashboard is fully
self-contained.
"""

import json

import pytest

from repro.arch.presets import single_precision_node
from repro.bench.baselines import (
    Band,
    band_for,
    compare_snapshots,
    compare_to_baseline,
    load_baseline_file,
    write_baseline_file,
)
from repro.bench.dashboard import stats_html, write_stats_html
from repro.bench.stats import collect_stats
from repro.cli import main
from repro.dnn import zoo
from repro.errors import ConfigError
from repro.sweep import CompileCache, expand_jobs, run_sweep, set_cache
from repro.telemetry import TileGroupProfile, capture

TINY = ("TinyCNN", "TinyMLP")


@pytest.fixture(autouse=True)
def fresh_cache():
    previous = set_cache(CompileCache())
    yield
    set_cache(previous)


@pytest.fixture(scope="module")
def node():
    return single_precision_node()


def lenet_report(node):
    return collect_stats(zoo.load("lenet5"), node, minibatch=32)


class TestUtilizationGuard:
    def test_all_zero_group_renders_zero(self):
        row = TileGroupProfile(
            group="idle", chip="engine", tiles=1,
            busy_cycles=0.0, blocked_cycles=0.0, stalled_cycles=0.0,
        )
        assert row.total_cycles == 0.0
        assert row.utilization == 0.0  # not ZeroDivisionError

    def test_beat_denominates_when_set(self):
        row = TileGroupProfile(
            group="g", chip="c", tiles=1,
            busy_cycles=25.0, blocked_cycles=0.0, stalled_cycles=0.0,
            beat_cycles=100.0,
        )
        assert row.utilization == 0.25


class TestTileProfileParity:
    """Satellite: engine-vs-analytical parity across three zoo
    networks — group keys, utilization bands, and the
    ``busy + blocked + stalled == bottleneck`` invariant."""

    @pytest.mark.parametrize("name", ["lenet5", "alexnet", "vgg16"])
    def test_profiles_are_consistent(self, node, name):
        report = collect_stats(zoo.load(name), node, minibatch=32)
        beat = report.result.bottleneck.cycles

        profile_keys = [r.group for r in report.analytical_profile]
        cause_keys = [r.group for r in report.analytical_causes]
        assert profile_keys == cause_keys
        assert len(profile_keys) == len(set(profile_keys))

        for row in report.analytical_profile:
            # The pinned invariant: every stage accounts for exactly
            # one pipeline beat.
            assert row.total_cycles == pytest.approx(beat, rel=1e-9)
            assert 0.0 <= row.utilization <= 1.0
        for row in report.analytical_causes:
            assert row.total_cycles == pytest.approx(beat, rel=1e-9)

        if report.engine_ran:
            engine_keys = {r.group for r in report.engine_profile}
            assert engine_keys == {
                r.group for r in report.engine_causes
            }
            # Engine tiles are named unit@tile.  The analytical model
            # folds pooling into its conv stage while the engine gives
            # pool layers their own tiles, so every analytical unit
            # must appear among the engine units (not vice versa).
            analytical_units = {
                g.split("/")[0] for g in profile_keys
            }
            engine_units = {g.split("@")[0] for g in engine_keys}
            assert analytical_units <= engine_units
            for row in report.engine_profile:
                assert 0.0 < row.utilization <= 1.0

    def test_engine_parity_exercised_for_lenet5(self, node):
        """LeNet-5 must actually reach the engine branch — the parity
        test above is vacuous for networks beyond engine scope."""
        report = lenet_report(node)
        assert report.engine_ran, report.engine_skipped
        assert report.engine_profile


class TestSnapshotDeterminism:
    def test_bit_identical_across_reruns(self, node):
        first = json.dumps(
            lenet_report(node).snapshot(), sort_keys=True
        )
        set_cache(CompileCache())  # cold second run
        second = json.dumps(
            lenet_report(node).snapshot(), sort_keys=True
        )
        assert first == second

    def test_sweep_metrics_bit_identical_across_worker_counts(self):
        jobs = expand_jobs(TINY)
        with capture() as serial:
            run_sweep(jobs, workers=1)
        set_cache(CompileCache())
        with capture() as parallel:
            run_sweep(jobs, workers=2)
        assert json.dumps(
            serial.metrics.to_dict(), sort_keys=True
        ) == json.dumps(parallel.metrics.to_dict(), sort_keys=True)

    def test_sweep_capture_has_deterministic_job_metrics(self):
        with capture() as tel:
            run_sweep(expand_jobs(TINY), workers=1)
        hist = tel.metrics.histogram("sweep.job_cycles", "bottleneck")
        assert hist is not None and hist.count == len(expand_jobs(TINY))
        # Wall-clock metrics exist but live in volatile groups.
        assert any(
            group.startswith("wall.")
            for group, _, _ in tel.metrics.histograms()
        )
        assert not any(
            group.startswith("wall.") for group in tel.metrics.to_dict()
        )


class TestBands:
    def test_direction_higher_tolerates_improvement(self):
        band = Band(rel_tol=0.01, direction="higher")
        assert band.allows(100.0, 50.0)  # faster: fine
        assert band.allows(100.0, 100.9)  # within 1%
        assert not band.allows(100.0, 102.0)  # 2% slower: regression

    def test_direction_lower_tolerates_improvement(self):
        band = Band(rel_tol=0.01, direction="lower")
        assert band.allows(100.0, 200.0)
        assert not band.allows(100.0, 98.0)

    def test_counts_are_exact(self):
        band = band_for("engine.instr_cycles/NDCONV/count")
        assert band.rel_tol == 0.0
        assert not band.allows(100.0, 101.0)
        assert band.allows(100.0, 100.0)

    def test_throughput_is_lower_is_worse(self):
        band = band_for("perf/LeNet-5/train_images_per_s/value")
        assert band.direction == "lower"


def _metrics_snapshot(**metrics):
    return {
        "fingerprint": "f" * 64,
        "metrics": {
            "g": {
                name: {"kind": "gauge", "value": value}
                for name, value in metrics.items()
            }
        },
    }


class TestCompare:
    def test_identical_snapshots_pass(self):
        snap = _metrics_snapshot(cycles=100.0)
        comparison = compare_snapshots(snap, snap)
        assert comparison.ok
        assert [d.status for d in comparison.deltas] == ["ok"]

    def test_regression_detected_and_described(self):
        base = _metrics_snapshot(cycles=100.0)
        cur = _metrics_snapshot(cycles=150.0)
        comparison = compare_snapshots(cur, base)
        assert not comparison.ok
        (delta,) = comparison.regressions
        assert delta.path == "g/cycles/value"
        assert "REGRESSION" in comparison.describe()

    def test_missing_metric_is_a_regression_new_is_not(self):
        base = _metrics_snapshot(cycles=100.0, gone=1.0)
        cur = _metrics_snapshot(cycles=100.0, fresh=2.0)
        comparison = compare_snapshots(cur, base)
        statuses = {d.path: d.status for d in comparison.deltas}
        assert statuses["g/gone/value"] == "missing"
        assert statuses["g/fresh/value"] == "new"
        assert [d.path for d in comparison.regressions] == [
            "g/gone/value"
        ]

    def test_baseline_file_roundtrip(self, tmp_path, node):
        snapshot = lenet_report(node).snapshot()
        path = write_baseline_file(snapshot, tmp_path / "bl.json")
        entries = load_baseline_file(path)
        assert entries == {snapshot["fingerprint"]: snapshot}
        comparison = compare_to_baseline(snapshot, path)
        assert comparison.ok

    def test_missing_entry_is_config_error(self, tmp_path):
        write_baseline_file(_metrics_snapshot(x=1.0), tmp_path / "b.json")
        other = _metrics_snapshot(x=1.0)
        other["fingerprint"] = "0" * 64
        with pytest.raises(ConfigError, match="no baseline entry"):
            compare_to_baseline(other, tmp_path / "b.json")

    def test_corrupt_baseline_is_config_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(ConfigError, match="schema"):
            load_baseline_file(bad)


class TestStatsCli:
    def test_stats_json_prints_snapshot(self, capsys):
        assert main(["stats", "tiny", "--json"]) == 0
        out = capsys.readouterr().out
        snapshot = json.loads(out[: out.rindex("}") + 1])
        assert snapshot["network"] == "TinyCNN"
        assert snapshot["fingerprint"]
        assert snapshot["metrics"]

    def test_stats_tables_cover_both_simulators(self, capsys):
        assert main(["stats", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Bottleneck attribution" in out
        assert "analytical" in out and "engine" in out
        assert "p95" in out and "p99" in out
        assert "what would fix it" in out

    def test_compare_roundtrip_exits_clean(self, tmp_path, capsys):
        baseline = tmp_path / "bl.json"
        assert main(
            ["stats", "tiny", "--baseline", str(baseline)]
        ) == 0
        assert main(["stats", "tiny", "--compare", str(baseline)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_exits_2_on_injected_regression(
        self, tmp_path, capsys
    ):
        baseline = tmp_path / "bl.json"
        assert main(
            ["stats", "tiny", "--baseline", str(baseline)]
        ) == 0
        doc = json.loads(baseline.read_text())
        for entry in doc["entries"].values():
            for group in entry["metrics"].values():
                for metric in group.values():
                    if metric["kind"] == "histogram":
                        metric["mean"] *= 0.5  # current now looks 2x
        baseline.write_text(json.dumps(doc))
        with pytest.raises(SystemExit) as excinfo:
            main(["stats", "tiny", "--compare", str(baseline)])
        assert excinfo.value.code == 2
        assert "REGRESSION" in capsys.readouterr().out

    def test_checked_in_lenet5_baseline_passes(self, capsys):
        """The CI regression gate: the repository's committed baseline
        must match a fresh run."""
        assert main([
            "stats", "lenet5",
            "--compare", "tests/data/stats_baseline_lenet5.json",
        ]) == 0
        assert "no regressions" in capsys.readouterr().out


class TestDashboard:
    def test_html_is_self_contained(self, tmp_path, node):
        report = lenet_report(node)
        path = write_stats_html(report, tmp_path / "dash.html")
        text = path.read_text()
        assert text.startswith("<!DOCTYPE html>")
        for external in ("http://", "https://", "src=", "href="):
            assert external not in text
        assert "<svg" in text and "<style>" in text and "<script>" in text

    def test_html_contains_all_four_views(self, node):
        report = lenet_report(node)
        text = stats_html(report)
        assert "Utilization heatmap" in text
        assert "Roofline" in text
        assert "Cycle attribution" in text
        assert "p99" in text  # percentile tables
        # Every chart ships its table-view twin.
        assert text.count("Table view") >= 3

    def test_html_deterministic(self, node):
        report = lenet_report(node)
        assert stats_html(report) == stats_html(report)

    def test_cli_writes_dashboard(self, tmp_path, capsys):
        out = tmp_path / "dash.html"
        assert main(["stats", "tiny", "--html", str(out)]) == 0
        assert out.exists() and out.stat().st_size > 10_000
        assert "wrote dashboard" in capsys.readouterr().out
