"""Tests for the processing-tile models, including array reconfigurability."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.presets import FREQUENCY_HZ, conv_comp_tile, fc_comp_tile
from repro.arch.tiles import (
    ArrayConfig,
    CompHeavyConfig,
    MemHeavyConfig,
    array_utilization,
)
from repro.errors import ConfigError


class TestCompHeavy:
    def test_conv_tile_peak_matches_fig14(self):
        tile = conv_comp_tile()
        # 8x3 2D-PEs x 4 lanes x 2 FLOPs + 32 accumulator FLOPs = 224/cy.
        assert tile.flops_per_cycle == 224
        assert tile.peak_flops(FREQUENCY_HZ) == pytest.approx(134.4e9)

    def test_fc_tile_peak_matches_fig14(self):
        tile = fc_comp_tile()
        assert tile.flops_per_cycle == 64
        assert tile.peak_flops(FREQUENCY_HZ) == pytest.approx(38.4e9)

    def test_counts(self):
        tile = conv_comp_tile()
        assert tile.pe_count == 24
        assert tile.fma_count == 96

    def test_validation(self):
        with pytest.raises(ConfigError):
            CompHeavyConfig(0, 3, 4, 0, 8, 4, 4, 16)
        with pytest.raises(ConfigError):
            CompHeavyConfig(8, 3, 4, -1, 8, 4, 4, 16)
        with pytest.raises(ConfigError):
            # Row split demands even rows.
            CompHeavyConfig(7, 3, 4, 0, 8, 4, 4, 16, row_split=True)


class TestReconfigurability:
    def test_configurations_preserve_col_lane_product(self):
        tile = conv_comp_tile()
        for cfg in tile.configurations():
            assert cfg.cols * cfg.lanes == tile.cols * tile.lanes

    def test_row_split_halves_rows(self):
        tile = conv_comp_tile()
        splits = {cfg.splits for cfg in tile.configurations()}
        assert splits == {1, 2}
        for cfg in tile.configurations():
            if cfg.splits == 2:
                assert cfg.rows == tile.rows // 2

    def test_disabled_reconfigurability(self):
        tile = CompHeavyConfig(
            8, 3, 4, 0, 8, 4, 4, 16,
            row_split=False, lane_redistribution=False,
        )
        configs = list(tile.configurations())
        assert len(configs) == 1
        assert configs[0] == ArrayConfig(8, 3, 4, 1)

    def test_best_configuration_beats_default(self):
        """Fig 19: C2/S2 splits row-wise to run 2 batch convolutions —
        reconfiguration must never lose to the default shape."""
        tile = conv_comp_tile()
        default = ArrayConfig(tile.rows, tile.cols, tile.lanes)
        for rows, count in [(4, 2), (27, 256), (13, 5), (1, 1)]:
            _, best = tile.best_configuration(rows, count)
            assert best >= array_utilization(default, rows, count)

    def test_best_configuration_validates(self):
        with pytest.raises(ConfigError):
            conv_comp_tile().best_configuration(0, 4)


class TestArrayUtilization:
    def test_perfect_fit(self):
        cfg = ArrayConfig(rows=8, cols=3, lanes=4)
        assert array_utilization(cfg, 16, 8) == pytest.approx(1.0)

    def test_row_residue(self):
        cfg = ArrayConfig(rows=8, cols=3, lanes=4)
        # 9 rows of work on 8 array rows: 9/16 utilization.
        assert array_utilization(cfg, 9, 4) == pytest.approx(9 / 16)

    @settings(max_examples=200, deadline=None)
    @given(
        rows=st.integers(1, 16),
        lanes=st.integers(1, 8),
        splits=st.sampled_from([1, 2]),
        feature_rows=st.integers(1, 300),
        feature_count=st.integers(1, 600),
    )
    def test_utilization_bounded(
        self, rows, lanes, splits, feature_rows, feature_count
    ):
        cfg = ArrayConfig(rows=rows, cols=3, lanes=lanes, splits=splits)
        util = array_utilization(cfg, feature_rows, feature_count)
        assert 0.0 < util <= 1.0

    @settings(max_examples=100, deadline=None)
    @given(
        feature_rows=st.integers(1, 64),
        feature_count=st.integers(1, 128),
    )
    def test_best_configuration_is_argmax(self, feature_rows, feature_count):
        tile = conv_comp_tile()
        cfg, util = tile.best_configuration(feature_rows, feature_count)
        brute = max(
            array_utilization(c, feature_rows, feature_count)
            for c in tile.configurations()
        )
        assert util == pytest.approx(brute)


class TestMemHeavy:
    def test_peak_flops(self):
        tile = MemHeavyConfig(capacity_bytes=512 * 1024, num_sfu=32)
        assert tile.flops_per_cycle == 32
        assert tile.peak_flops(FREQUENCY_HZ) == pytest.approx(19.2e9)

    def test_halved_capacity(self):
        tile = MemHeavyConfig(capacity_bytes=512 * 1024, num_sfu=32)
        half = tile.halved_capacity()
        assert half.capacity_bytes == 256 * 1024
        assert half.num_sfu == 32

    def test_validation(self):
        with pytest.raises(ConfigError):
            MemHeavyConfig(capacity_bytes=0, num_sfu=32)
        with pytest.raises(ConfigError):
            MemHeavyConfig(capacity_bytes=1024, num_sfu=0)
