"""Tests for the minibatch gradient synchronization model (Sec 3.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import single_precision_node
from repro.compiler import map_network
from repro.dnn import zoo
from repro.errors import SimulationError
from repro.sim.allreduce import (
    minibatch_sync,
    ring_allreduce_cycles,
    wheel_accumulate_cycles,
)

FREQ = 600e6


class TestRingAllReduce:
    def test_single_participant_free(self):
        assert ring_allreduce_cycles(1e6, 1, 12e9, FREQ) == 0.0

    def test_two_participants_move_full_payload(self):
        # 2(n-1)/n with n=2 -> each link carries exactly the payload.
        cycles = ring_allreduce_cycles(1e6, 2, 12e9, FREQ)
        assert cycles == pytest.approx(1e6 / (12e9 / FREQ))

    def test_bandwidth_optimality_limit(self):
        """As n grows the per-link traffic approaches 2x the payload."""
        few = ring_allreduce_cycles(1e6, 2, 12e9, FREQ)
        many = ring_allreduce_cycles(1e6, 64, 12e9, FREQ)
        assert few < many < 2 * few + 1

    @settings(max_examples=100, deadline=None)
    @given(
        payload=st.floats(1, 1e9),
        n=st.integers(2, 64),
        bw=st.floats(1e9, 1e12),
    )
    def test_scaling_properties(self, payload, n, bw):
        cycles = ring_allreduce_cycles(payload, n, bw, FREQ)
        assert cycles > 0
        # Linear in payload, inverse in bandwidth.
        assert ring_allreduce_cycles(2 * payload, n, bw, FREQ) == (
            pytest.approx(2 * cycles, rel=1e-9)
        )
        assert ring_allreduce_cycles(payload, n, 2 * bw, FREQ) == (
            pytest.approx(cycles / 2, rel=1e-9)
        )

    def test_validation(self):
        with pytest.raises(SimulationError):
            ring_allreduce_cycles(1e6, 0, 12e9, FREQ)
        with pytest.raises(SimulationError):
            ring_allreduce_cycles(1e6, 4, 0, FREQ)


class TestWheelAccumulate:
    def test_single_chip_free(self):
        assert wheel_accumulate_cycles(1e6, 1, 16e9, FREQ) == 0.0

    def test_round_trip_payload(self):
        cycles = wheel_accumulate_cycles(1e6, 4, 16e9, FREQ)
        assert cycles == pytest.approx(2e6 / (16e9 / FREQ))


class TestMinibatchSync:
    @pytest.fixture(scope="class")
    def node(self):
        return single_precision_node()

    def test_overhead_shrinks_with_minibatch(self, node):
        mapping = map_network(zoo.alexnet(), node)
        small = minibatch_sync(mapping, minibatch=32)
        large = minibatch_sync(mapping, minibatch=512)
        assert small.cycles_per_image > large.cycles_per_image
        assert small.overhead_fraction > large.overhead_fraction

    def test_sync_never_dominates_compute(self, node):
        """Gradient sync must stay below the compute window — this is
        why it can hide behind the pipeline at all (and why the paper's
        evaluation/training gap is only 'marginally over 3x': the
        residual sync cost is real but overlappable)."""
        for name in ("AlexNet", "VGG-A", "GoogLeNet"):
            mapping = map_network(zoo.load(name), node)
            report = minibatch_sync(mapping, minibatch=256)
            assert report.overhead_fraction < 1.0, name
            # Larger minibatches amortise it away.
            relaxed = minibatch_sync(mapping, minibatch=2048)
            assert relaxed.overhead_fraction < 0.15, name

    def test_model_parallelism_keeps_fc_off_the_ring(self, node):
        from dataclasses import replace

        net = zoo.alexnet()
        sharded = minibatch_sync(map_network(net, node), 256)
        replicated_node = replace(node, fc_model_parallel=False)
        replicated = minibatch_sync(
            map_network(net, replicated_node), 256
        )
        # AlexNet's FC gradients dwarf its conv gradients: replicating
        # them inflates the ring phase by an order of magnitude.
        assert replicated.ring_cycles > 5 * sharded.ring_cycles

    def test_gradient_byte_accounting(self, node):
        net = zoo.alexnet()
        report = minibatch_sync(map_network(net, node), 256)
        total = report.conv_gradient_bytes + report.fc_gradient_bytes
        assert total == net.weight_count * 4

    def test_describe(self, node):
        report = minibatch_sync(map_network(zoo.alexnet(), node), 256)
        assert "sync cycles" in report.describe()

    def test_validation(self, node):
        mapping = map_network(zoo.alexnet(), node)
        with pytest.raises(SimulationError):
            minibatch_sync(mapping, minibatch=0)


class TestSystemSync:
    """Degenerate scale-out edges: a 1-node system must collapse to the
    single-node sync report exactly, and only true multi-node systems
    may grow an inter-node phase."""

    @pytest.fixture(scope="class")
    def node(self):
        return single_precision_node()

    def test_one_node_system_is_byte_identical(self, node):
        from repro.arch.system import make_system

        mapping = map_network(zoo.alexnet(), node)
        base = minibatch_sync(mapping, 256)
        system = minibatch_sync(mapping, 256, system=make_system(node))
        assert system == base
        assert system.nodes == 1
        assert system.internode_cycles == 0.0
        assert system.describe() == base.describe()

    def test_multi_node_adds_a_serialized_phase(self, node):
        from repro.arch.system import make_system

        mapping = map_network(zoo.alexnet(), node)
        base = minibatch_sync(mapping, 256)
        scaled = minibatch_sync(
            mapping, 256, system=make_system(node, 4)
        )
        assert scaled.internode_cycles > 0
        assert scaled.total_sync_cycles == pytest.approx(
            base.total_sync_cycles + scaled.internode_cycles
        )
        # The intra-node phases are untouched by scale-out.
        assert scaled.wheel_cycles == base.wheel_cycles
        assert scaled.ring_cycles == base.ring_cycles
        assert "inter-node" in scaled.describe()
        assert "inter-node" not in base.describe()

    def test_model_sharding_shrinks_the_internode_payload(self, node):
        from repro.arch.system import make_system

        mapping = map_network(zoo.alexnet(), node)
        data = minibatch_sync(
            mapping, 256, system=make_system(node, 8, "data")
        )
        hybrid = minibatch_sync(
            mapping, 256, system=make_system(node, 8, "hybrid:2")
        )
        assert hybrid.internode_cycles < data.internode_cycles
