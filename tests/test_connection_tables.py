"""Tests for connection-table convolutions (paper Sec 2.2) and LeNet-5."""

import numpy as np
import pytest

from repro.arch import single_precision_node
from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation, ConvSpec, FeatureShape
from repro.dnn.analysis import Step, layer_macs, profile
from repro.dnn.zoo import LENET_C3_TABLE, lenet5
from repro.errors import ShapeError
from repro.functional import ReferenceModel
from repro.sim import simulate


class TestConvSpecTables:
    def test_weight_count_ragged(self):
        spec = ConvSpec(
            "c", out_features=3, kernel=3,
            connection_table=((0,), (0, 1), (0, 1, 2)),
        )
        weights = spec.weight_count((FeatureShape(3, 8, 8),))
        assert weights == (1 + 2 + 3) * 9 + 3

    def test_fan_in_per_feature(self):
        spec = ConvSpec(
            "c", out_features=2, kernel=3,
            connection_table=((0, 2), (1,)),
        )
        assert spec.fan_in_of(0, 3) == 2
        assert spec.fan_in_of(1, 3) == 1
        assert spec.total_fan_in(3) == 3

    def test_dense_equivalence(self):
        """A full table is exactly a dense convolution."""
        table = tuple(tuple(range(4)) for _ in range(6))
        tabled = ConvSpec("t", out_features=6, kernel=3,
                          connection_table=table)
        dense = ConvSpec("d", out_features=6, kernel=3)
        src = (FeatureShape(4, 8, 8),)
        assert tabled.weight_count(src) == dense.weight_count(src)

    @pytest.mark.parametrize(
        "table",
        [
            ((0, 1),),  # wrong row count
            ((0,), (9,)),  # out-of-range input
            ((0,), ()),  # empty row
            ((0,), (1, 1)),  # duplicate
        ],
    )
    def test_bad_tables_rejected(self, table):
        spec = ConvSpec("c", out_features=2, kernel=3,
                        connection_table=table)
        with pytest.raises(ShapeError):
            spec.infer_shape((FeatureShape(3, 8, 8),))

    def test_table_with_groups_rejected(self):
        spec = ConvSpec("c", out_features=2, kernel=3, groups=2,
                        connection_table=((0,), (1,)))
        with pytest.raises(ShapeError):
            spec.infer_shape((FeatureShape(2, 8, 8),))

    def test_macs_reflect_sparsity(self):
        b = NetworkBuilder("sparse")
        b.input(4, 8)
        b.table_conv(((0,), (1,), (2,), (3,)), kernel=3, pad=1)
        sparse_net = b.build()
        b2 = NetworkBuilder("dense")
        b2.input(4, 8)
        b2.conv(4, kernel=3, pad=1)
        dense_net = b2.build()
        assert layer_macs(sparse_net["conv1"]) == (
            layer_macs(dense_net["conv1"]) // 4
        )

    def test_profile_flops_scale_with_table(self):
        b = NetworkBuilder("sparse")
        b.input(6, 8)
        b.table_conv(LENET_C3_TABLE[:6], kernel=3, pad=1)
        net = b.build()
        prof = profile(net["conv1"], Step.FP)
        assert prof.flops > 0


class TestLeNet5:
    def test_classic_parameter_counts(self):
        net = lenet5()
        # The published C3 count with the original table.
        assert net["c3"].weights == 1516
        # Whole network lands at the classic ~60K parameters.
        assert 55_000 < net.weight_count < 65_000

    def test_shapes(self):
        net = lenet5()
        assert net["c1"].output_shape == FeatureShape(6, 28, 28)
        assert net["c3"].output_shape == FeatureShape(16, 10, 10)
        assert net["c5"].output_shape == FeatureShape(120, 1, 1)

    def test_forward_backward(self):
        net = lenet5()
        model = ReferenceModel(net, seed=0)
        img = np.random.default_rng(1).normal(
            0, 1, (1, 32, 32)
        ).astype(np.float32)
        out = model.forward(img)
        assert out.shape == (10,)
        assert out.sum() == pytest.approx(1.0)
        loss = model.backward(7)
        assert np.isfinite(loss)

    def test_disconnected_weights_stay_zero(self):
        net = lenet5()
        model = ReferenceModel(net, seed=0)
        img = np.random.default_rng(2).normal(
            0, 1, (1, 32, 32)
        ).astype(np.float32)
        mask = model.state["c3"].weight_mask
        for _ in range(2):
            model.forward(img)
            model.backward(1)
            model.apply_gradients(0.05)
        off_table = model.state["c3"].weights * (1 - mask)
        assert np.abs(off_table).sum() == 0.0

    def test_table_gradient_numeric(self):
        net = lenet5()
        model = ReferenceModel(net, seed=3)
        img = np.random.default_rng(4).normal(
            0, 1, (1, 32, 32)
        ).astype(np.float32)
        model.forward(img)
        model.backward(0)
        analytic = model.state["c3"].grad_weights.copy()
        w = model.state["c3"].weights
        eps = 1e-3
        idx = (0, 1, 2, 2)  # output 0 connects to input 1 per the table

        def loss_at():
            model.forward(img)
            p = model.state["output"].output.reshape(-1)
            return -np.log(max(p[0], 1e-12))

        orig = w[idx]
        w[idx] = orig + eps
        lp = loss_at()
        w[idx] = orig - eps
        lm = loss_at()
        w[idx] = orig
        assert (lp - lm) / (2 * eps) == pytest.approx(
            analytic[idx], rel=0.1, abs=1e-3
        )

    def test_maps_onto_scaledeep(self):
        result = simulate(lenet5(), single_precision_node())
        assert result.training_images_per_s > 0

    def test_parameter_count_excludes_disconnected(self):
        net = lenet5()
        model = ReferenceModel(net, seed=0)
        assert model.parameter_count() == net.weight_count
