"""Unit tests for layer specifications and shape inference."""

import math

import pytest

from repro.dnn.layers import (
    Activation,
    ConcatSpec,
    ConvSpec,
    EltwiseAddSpec,
    FCSpec,
    FeatureShape,
    GlobalPoolSpec,
    InputSpec,
    LayerKind,
    PoolMode,
    PoolSpec,
    conv_padding_same,
    fan_in,
    he_init_scale,
    is_weighted,
)
from repro.errors import ShapeError


class TestFeatureShape:
    def test_properties(self):
        shape = FeatureShape(96, 55, 55)
        assert shape.feature_size == 55 * 55
        assert shape.elements == 96 * 55 * 55
        assert shape.bytes() == 96 * 55 * 55 * 4
        assert shape.bytes(dtype_bytes=2) == 96 * 55 * 55 * 2

    def test_str(self):
        assert str(FeatureShape(3, 224, 224)) == "3x224x224"

    @pytest.mark.parametrize("bad", [(0, 1, 1), (1, 0, 1), (1, 1, -1)])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ShapeError):
            FeatureShape(*bad)


class TestInputSpec:
    def test_shape_passthrough(self):
        spec = InputSpec("input", FeatureShape(3, 227, 227))
        assert spec.infer_shape(()) == FeatureShape(3, 227, 227)
        assert spec.weight_count(()) == 0
        assert spec.kind is LayerKind.INPUT

    def test_rejects_inputs(self):
        spec = InputSpec("input", FeatureShape(3, 8, 8))
        with pytest.raises(ShapeError):
            spec.infer_shape((FeatureShape(1, 1, 1),))


class TestConvSpec:
    def test_alexnet_conv1_shape(self):
        spec = ConvSpec("conv1", out_features=96, kernel=11, stride=4)
        out = spec.infer_shape((FeatureShape(3, 227, 227),))
        assert out == FeatureShape(96, 55, 55)

    def test_same_padding_preserves_extent(self):
        spec = ConvSpec("c", out_features=8, kernel=3, pad=1)
        out = spec.infer_shape((FeatureShape(4, 14, 14),))
        assert (out.height, out.width) == (14, 14)

    def test_weight_count_with_bias(self):
        spec = ConvSpec("c", out_features=96, kernel=11)
        weights = spec.weight_count((FeatureShape(3, 227, 227),))
        assert weights == 96 * 3 * 11 * 11 + 96

    def test_grouped_weights_halve(self):
        dense = ConvSpec("c", out_features=256, kernel=5, pad=2)
        grouped = ConvSpec("g", out_features=256, kernel=5, pad=2, groups=2)
        src = (FeatureShape(96, 27, 27),)
        # Grouped: each output sees half the input features.
        assert grouped.weight_count(src) == (
            (dense.weight_count(src) - 256) // 2 + 256
        )

    def test_groups_must_divide(self):
        spec = ConvSpec("c", out_features=10, kernel=3, groups=3)
        with pytest.raises(ShapeError):
            spec.infer_shape((FeatureShape(9, 8, 8),))

    def test_kernel_too_large(self):
        spec = ConvSpec("c", out_features=1, kernel=9)
        with pytest.raises(ShapeError):
            spec.infer_shape((FeatureShape(1, 4, 4),))

    def test_macs_per_output_element(self):
        spec = ConvSpec("c", out_features=4, kernel=3, groups=2)
        assert spec.macs_per_output_element(8) == 4 * 9

    def test_expects_single_input(self):
        spec = ConvSpec("c", out_features=4, kernel=3)
        with pytest.raises(ShapeError):
            spec.infer_shape(
                (FeatureShape(1, 8, 8), FeatureShape(1, 8, 8))
            )


class TestPoolSpec:
    def test_stride_defaults_to_window(self):
        spec = PoolSpec("p", window=2)
        out = spec.infer_shape((FeatureShape(16, 8, 8),))
        assert out == FeatureShape(16, 4, 4)

    def test_overlapping_pool(self):
        spec = PoolSpec("p", window=3, stride=2)
        out = spec.infer_shape((FeatureShape(96, 55, 55),))
        assert out == FeatureShape(96, 27, 27)

    def test_no_weights(self):
        spec = PoolSpec("p", window=2)
        assert spec.weight_count((FeatureShape(4, 8, 8),)) == 0
        assert not is_weighted(spec)


class TestGlobalPoolSpec:
    def test_collapses_spatial(self):
        spec = GlobalPoolSpec("g")
        out = spec.infer_shape((FeatureShape(512, 7, 7),))
        assert out == FeatureShape(512, 1, 1)
        assert spec.kind is LayerKind.SAMP


class TestFCSpec:
    def test_output_is_vector(self):
        spec = FCSpec("fc", out_features=4096)
        out = spec.infer_shape((FeatureShape(256, 6, 6),))
        assert out == FeatureShape(4096, 1, 1)

    def test_weight_count(self):
        spec = FCSpec("fc", out_features=10)
        weights = spec.weight_count((FeatureShape(4, 3, 3),))
        assert weights == 4 * 9 * 10 + 10


class TestJoinSpecs:
    def test_concat_adds_features(self):
        spec = ConcatSpec("cat")
        out = spec.infer_shape(
            (FeatureShape(64, 28, 28), FeatureShape(32, 28, 28))
        )
        assert out == FeatureShape(96, 28, 28)

    def test_concat_rejects_spatial_mismatch(self):
        spec = ConcatSpec("cat")
        with pytest.raises(ShapeError):
            spec.infer_shape(
                (FeatureShape(64, 28, 28), FeatureShape(32, 14, 14))
            )

    def test_concat_needs_two_inputs(self):
        with pytest.raises(ShapeError):
            ConcatSpec("cat").infer_shape((FeatureShape(1, 2, 2),))

    def test_eltwise_preserves_shape(self):
        spec = EltwiseAddSpec("add")
        shape = FeatureShape(64, 56, 56)
        assert spec.infer_shape((shape, shape)) == shape

    def test_eltwise_rejects_mismatch(self):
        spec = EltwiseAddSpec("add")
        with pytest.raises(ShapeError):
            spec.infer_shape(
                (FeatureShape(64, 56, 56), FeatureShape(64, 28, 28))
            )


class TestHelpers:
    def test_conv_padding_same(self):
        assert conv_padding_same(3) == 1
        assert conv_padding_same(11) == 5
        with pytest.raises(ShapeError):
            conv_padding_same(4)

    def test_fan_in(self):
        conv = ConvSpec("c", out_features=8, kernel=3)
        assert fan_in(conv, (FeatureShape(4, 8, 8),)) == 4 * 9
        fc = FCSpec("f", out_features=8)
        assert fan_in(fc, (FeatureShape(4, 3, 3),)) == 36
        pool = PoolSpec("p", window=2)
        assert fan_in(pool, (FeatureShape(4, 8, 8),)) == 1

    def test_he_init_scale(self):
        conv = ConvSpec("c", out_features=8, kernel=3)
        scale = he_init_scale(conv, (FeatureShape(4, 8, 8),))
        assert scale == pytest.approx(math.sqrt(2.0 / 36))
