"""Tests for the serving simulator: generator determinism, batcher
edge cases (empty queue, max-wait expiry exactly on a beat, shed
accounting), multi-tenant placement invariants, byte-identical reruns
of full runs and curves, exports, and the CLI verb."""

import json

import pytest

from repro.arch import single_precision_node
from repro.bench.dashboard import serve_html, write_serve_html
from repro.bench.export import write_serve_csv, write_serve_json
from repro.dnn import zoo
from repro.errors import ConfigError
from repro.serve import (
    CURVE_FIELDS,
    BatchPolicy,
    DynamicBatcher,
    Request,
    ServeConfig,
    generate_requests,
    place_networks,
    run_curve,
    simulate_serving,
)
from repro import cli

NODE = single_precision_node()

#: Short but non-trivial: a few hundred requests in the default runs.
FAST = ServeConfig(qps=5_000.0, duration_s=0.05, seed=7)


def _nets(*names):
    return [zoo.load(name) for name in names]


class TestGenerator:
    def test_poisson_is_seeded_and_sorted(self):
        a = generate_requests(["A", "B"], qps=1000.0, duration_s=0.1,
                              seed=3)
        b = generate_requests(["A", "B"], qps=1000.0, duration_s=0.1,
                              seed=3)
        assert a == b
        times = [r.arrival_s for r in a]
        assert times == sorted(times)
        assert {r.network for r in a} == {"A", "B"}

    def test_different_seeds_differ(self):
        a = generate_requests(["A"], qps=1000.0, duration_s=0.1, seed=0)
        b = generate_requests(["A"], qps=1000.0, duration_s=0.1, seed=1)
        assert a != b

    def test_uniform_arrivals_honour_weights(self):
        reqs = generate_requests(
            ["A", "B"], qps=1000.0, duration_s=0.1,
            arrivals="uniform", weights=(0.75, 0.25),
        )
        share = sum(r.network == "A" for r in reqs) / len(reqs)
        assert share == pytest.approx(0.75, abs=0.02)

    def test_max_requests_caps_the_stream(self):
        reqs = generate_requests(
            ["A"], qps=1e6, duration_s=10.0, max_requests=100
        )
        assert len(reqs) == 100

    @pytest.mark.parametrize("kwargs", [
        dict(qps=0.0, duration_s=1.0),
        dict(qps=100.0, duration_s=0.0),
        dict(qps=100.0, duration_s=1.0, arrivals="bursty"),
        dict(qps=100.0, duration_s=1.0, weights=(0.5,)),
        dict(qps=100.0, duration_s=1.0, weights=(2.0, -1.0)),
    ])
    def test_invalid_specs_are_config_errors(self, kwargs):
        with pytest.raises(ConfigError):
            generate_requests(["A", "B"], **kwargs)


class TestBatcher:
    def test_empty_queue_yields_nothing(self):
        batcher = DynamicBatcher(BatchPolicy())
        assert batcher.take(1.0) == []
        assert batcher.deadline() is None

    def test_greedy_dispatches_partial_batches(self):
        batcher = DynamicBatcher(BatchPolicy(kind="greedy", max_batch=8))
        batcher.offer(Request(0, "A", 0.0))
        assert len(batcher.take(0.0)) == 1
        assert batcher.deadline() is None  # greedy never arms timers

    def test_wait_holds_until_full(self):
        policy = BatchPolicy(kind="wait", max_batch=2, max_wait_s=1.0)
        batcher = DynamicBatcher(policy)
        batcher.offer(Request(0, "A", 0.0))
        assert batcher.take(0.0) == []  # neither full nor expired
        batcher.offer(Request(1, "A", 0.1))
        assert len(batcher.take(0.1)) == 2  # full: dispatch

    def test_expiry_exactly_on_the_deadline_dispatches(self):
        # The regression the event loop depends on: the timer fires at
        # exactly ``arrival + max_wait`` and ``take`` must release the
        # batch at that instant, not one float ulp later.
        policy = BatchPolicy(kind="wait", max_batch=8, max_wait_s=0.002)
        batcher = DynamicBatcher(policy)
        batcher.offer(Request(0, "A", 0.1))
        deadline = batcher.deadline()
        assert deadline == 0.1 + 0.002
        assert batcher.take(deadline) == [Request(0, "A", 0.1)]

    def test_shed_past_queue_depth(self):
        policy = BatchPolicy(max_batch=8, queue_depth=2)
        batcher = DynamicBatcher(policy)
        results = [
            batcher.offer(Request(i, "A", 0.0)) for i in range(5)
        ]
        assert results == [True, True, False, False, False]
        assert batcher.admitted == 2
        assert batcher.shed == 3

    def test_invalid_policies_are_config_errors(self):
        with pytest.raises(ConfigError):
            BatchPolicy(kind="eager")
        with pytest.raises(ConfigError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ConfigError):
            BatchPolicy(max_wait_s=-1.0)
        with pytest.raises(ConfigError):
            BatchPolicy(queue_depth=0)

    def test_drain_flushes_the_queue(self):
        # The down-tenant transition flushes queued requests as failed
        # copies; drain must hand back the queue in arrival order and
        # leave the batcher reusable.
        policy = BatchPolicy(kind="wait", max_batch=8, max_wait_s=1.0)
        batcher = DynamicBatcher(policy)
        reqs = [Request(i, "A", i * 0.01) for i in range(3)]
        for req in reqs:
            batcher.offer(req)
        assert batcher.drain() == reqs
        assert batcher.drain() == []
        assert batcher.deadline() is None
        assert batcher.offer(Request(9, "A", 1.0))


class TestPlacement:
    def test_shares_and_clusters_partition_the_node(self):
        placement = place_networks(_nets("LeNet-5", "AlexNet"), NODE)
        assert sum(t.clusters for t in placement.tenants) == \
            NODE.cluster_count
        assert sum(t.share for t in placement.tenants) == \
            pytest.approx(1.0)
        assert all(t.clusters >= 1 for t in placement.tenants)

    def test_single_tenant_owns_the_node(self):
        placement = place_networks(_nets("AlexNet"), NODE)
        (tenant,) = placement.tenants
        assert tenant.clusters == NODE.cluster_count
        assert tenant.share == pytest.approx(1.0)

    def test_duplicate_networks_rejected(self):
        with pytest.raises(ConfigError):
            place_networks(_nets("AlexNet", "AlexNet"), NODE)

    def test_saturation_grows_with_batch(self):
        placement = place_networks(_nets("AlexNet"), NODE)
        assert placement.saturation_qps(8) > placement.saturation_qps(1)

    def test_largest_remainder_ties_go_to_the_earlier_tenant(self):
        # Three equal-weight tenants on four clusters: everyone's
        # deficit against the 4/3 ideal ties, so the single leftover
        # cluster must land on the first tenant (strict comparison),
        # deterministically across reruns.
        nets = _nets("LeNet-5", "TinyCNN", "TinyMLP")
        for _ in range(3):
            placement = place_networks(nets, NODE, weights=(1.0,) * 3)
            assert [t.clusters for t in placement.tenants] == [2, 1, 1]

    def test_zero_weights_degrade_to_an_equal_split(self):
        placement = place_networks(
            _nets("LeNet-5", "AlexNet"), NODE, weights=(0.0, 0.0)
        )
        assert [t.clusters for t in placement.tenants] == [2, 2]

    def test_single_tenant_with_zero_weight_owns_the_node(self):
        placement = place_networks(
            _nets("AlexNet"), NODE, weights=(0.0,)
        )
        (tenant,) = placement.tenants
        assert tenant.clusters == NODE.cluster_count

    def test_weight_validation(self):
        nets = _nets("LeNet-5", "AlexNet")
        with pytest.raises(ConfigError):
            place_networks(nets, NODE, weights=(1.0,))
        with pytest.raises(ConfigError):
            place_networks(nets, NODE, weights=(1.0, -2.0))

    def test_minimum_spans_beyond_capacity_are_rejected(self):
        # Five tenants each need at least one cluster; a four-cluster
        # node cannot host them no matter the weights.
        nets = _nets("LeNet-5", "TinyCNN", "TinyMLP", "AlexNet", "ZF")
        with pytest.raises(ConfigError):
            place_networks(nets, NODE)

    def test_minimum_spans_survive_skewed_weights(self):
        # A tiny weight cannot push a tenant below the clusters one
        # copy of its mapping spans.
        placement = place_networks(
            _nets("LeNet-5", "AlexNet"), NODE, weights=(1e-9, 1.0)
        )
        assert all(t.clusters >= 1 for t in placement.tenants)
        assert sum(t.clusters for t in placement.tenants) == \
            NODE.cluster_count


class TestSimulator:
    def test_rerun_is_byte_identical(self):
        nets = _nets("LeNet-5", "AlexNet")
        dumps = [
            json.dumps(
                simulate_serving(nets, NODE, FAST).to_dict(),
                sort_keys=True,
            )
            for _ in range(2)
        ]
        assert dumps[0] == dumps[1]

    def test_conservation_offered_equals_completed_plus_shed(self):
        overload = ServeConfig(
            qps=200_000.0, duration_s=0.02, seed=7,
            policy=BatchPolicy(queue_depth=4),
        )
        report = simulate_serving(_nets("AlexNet"), NODE, overload)
        stats = report.tenant("AlexNet")
        assert stats.offered == stats.completed + stats.shed
        assert stats.shed > 0  # the bound actually bit
        assert report.shed_rate > 0

    def test_latency_floor_is_one_pipeline_fill(self):
        report = simulate_serving(_nets("AlexNet"), NODE, FAST)
        stats = report.tenant("AlexNet")
        floor_ms = stats.latency_ms.min
        tenant = report.placement.tenant("AlexNet")
        assert floor_ms >= tenant.batch_latency_s(1) * 1e3 * 0.999

    def test_batches_never_exceed_max_batch(self):
        report = simulate_serving(_nets("LeNet-5"), NODE, FAST)
        stats = report.tenant("LeNet-5")
        assert stats.batch_sizes.max <= FAST.policy.max_batch

    def test_greedy_policy_runs(self):
        config = ServeConfig(
            qps=5_000.0, duration_s=0.05, seed=7,
            policy=BatchPolicy(kind="greedy"),
        )
        report = simulate_serving(_nets("AlexNet"), NODE, config)
        assert report.completed == report.offered


class TestCurve:
    def test_curve_is_deterministic_at_any_worker_count(self):
        config = ServeConfig(duration_s=0.02, seed=7)
        serial = run_curve(["alexnet", "zf"], NODE, config, workers=1)
        pooled = run_curve(["alexnet", "zf"], NODE, config, workers=2)
        assert json.dumps(serial.to_dict(), sort_keys=True) == \
            json.dumps(pooled.to_dict(), sort_keys=True)

    def test_rows_cover_every_network_and_point(self):
        config = ServeConfig(duration_s=0.02, seed=7)
        curve = run_curve(
            ["alexnet", "zf"], NODE, config, fractions=(0.5, 1.0)
        )
        rows = curve.rows()
        assert len(rows) == 4
        assert set(CURVE_FIELDS) <= set(rows[0])
        assert {r["network"] for r in rows} == {"AlexNet", "ZF"}

    def test_load_splits_by_tenant_capacity(self):
        config = ServeConfig(duration_s=0.02, seed=7)
        curve = run_curve(
            ["lenet5", "alexnet"], NODE, config, fractions=(0.5,)
        )
        # The fast tenant takes nearly all the aggregate load; the slow
        # one is offered ~its own half-saturation, so neither sheds.
        for row in curve.rows():
            assert row["shed_rate"] == 0.0

    def test_overload_point_sheds(self):
        config = ServeConfig(
            duration_s=0.05, seed=7,
            policy=BatchPolicy(queue_depth=16),
        )
        curve = run_curve(["alexnet"], NODE, config, fractions=(1.5,))
        (row,) = curve.rows()
        assert row["shed_rate"] > 0


class TestExports:
    def test_json_writer_round_trips(self, tmp_path):
        report = simulate_serving(_nets("AlexNet"), NODE, FAST)
        path = write_serve_json(report, tmp_path / "serve.json")
        doc = json.loads(path.read_text())
        assert doc["tenants"]["AlexNet"]["p99_ms"] > 0

    def test_csv_writer_uses_curve_fields(self, tmp_path):
        config = ServeConfig(duration_s=0.02, seed=7)
        curve = run_curve(["alexnet"], NODE, config, fractions=(1.0,))
        path = write_serve_csv(curve, tmp_path / "serve.csv")
        header = path.read_text().splitlines()[0]
        assert header == ",".join(CURVE_FIELDS)

    def test_dashboard_renders_every_network(self, tmp_path):
        config = ServeConfig(duration_s=0.02, seed=7)
        curve = run_curve(
            ["alexnet", "zf"], NODE, config, fractions=(0.5, 1.0)
        )
        html = serve_html(curve)
        assert "AlexNet" in html and "ZF" in html
        assert "Latency vs offered load" in html
        path = write_serve_html(curve, tmp_path / "serve.html")
        assert path.read_text() == html


class TestCli:
    def test_serve_verb_runs(self, capsys):
        code = cli.main([
            "serve", "lenet5,alexnet", "--qps", "2000",
            "--duration", "0.02",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "LeNet-5" in out and "AlexNet" in out
        assert "sustained" in out

    def test_serve_curve_json_reruns_identically(self, capsys):
        argv = [
            "serve", "alexnet", "--curve", "--duration", "0.02",
            "--json",
        ]
        assert cli.main(argv) == 0
        first = capsys.readouterr().out
        assert cli.main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        doc = json.loads(first)
        assert doc["capacity_qps"] > 0
        assert all(r["p99_ms"] > 0 for r in doc["rows"])

    def test_unknown_network_exits_2(self):
        with pytest.raises(SystemExit) as err:
            cli.main(["serve", "nosuchnet"])
        assert err.value.code == 2

    def test_bad_config_exits_2(self):
        with pytest.raises(SystemExit) as err:
            cli.main(["serve", "alexnet", "--qps", "-1"])
        assert err.value.code == 2

    def test_html_without_curve_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as err:
            cli.main([
                "serve", "alexnet", "--duration", "0.02",
                "--html", str(tmp_path / "x.html"),
            ])
        assert err.value.code == 2
