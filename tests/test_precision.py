"""Tests for reduced-precision execution (the Fig 17 premise)."""

import numpy as np
import pytest

from repro.dnn.zoo import tiny_cnn, tiny_mlp
from repro.errors import ConfigError
from repro.functional import SGDTrainer, make_synthetic_dataset
from repro.functional.precision import (
    NumericFormat,
    PrecisionComparison,
    ReducedPrecisionModel,
    compare_precision,
    quantize,
)


class TestQuantize:
    def test_fp32_is_identity(self):
        x = np.random.default_rng(0).normal(0, 1, 64)
        np.testing.assert_array_equal(
            quantize(x, NumericFormat.FP32), x.astype(np.float32)
        )

    def test_fp16_rounds(self):
        x = np.array([1.0 + 2**-12], dtype=np.float32)
        q = quantize(x, NumericFormat.FP16)
        assert q[0] != x[0]  # below fp16 resolution near 1.0
        assert abs(q[0] - x[0]) < 1e-3

    def test_bf16_truncates_mantissa(self):
        x = np.array([1.0 + 2**-9], dtype=np.float32)
        q = quantize(x, NumericFormat.BF16)
        assert q[0] == 1.0  # only 7 mantissa bits survive
        # Exactly-representable values pass through.
        np.testing.assert_array_equal(
            quantize(np.array([1.5, -2.0], np.float32), NumericFormat.BF16),
            [1.5, -2.0],
        )

    def test_bf16_preserves_exponent_range(self):
        x = np.array([1e30, 1e-30], dtype=np.float32)
        q = quantize(x, NumericFormat.BF16)
        assert np.isfinite(q).all()
        assert q[0] > 1e29 and 0 < q[1] < 1e-29

    def test_idempotent(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, 128).astype(np.float32)
        for fmt in NumericFormat:
            once = quantize(x, fmt)
            np.testing.assert_array_equal(once, quantize(once, fmt))


class TestReducedModel:
    @pytest.fixture(scope="class")
    def net(self):
        return tiny_cnn(num_classes=4, in_size=12)

    @pytest.fixture(scope="class")
    def images(self, net):
        shape = net.input.output_shape
        rng = np.random.default_rng(5)
        return rng.normal(
            0, 1, (8, shape.count, shape.height, shape.width)
        ).astype(np.float32)

    def test_fp16_close_to_fp32(self, net, images):
        """The Sec 6.1 premise: FP16 outputs track FP32 closely enough
        that classifications barely change."""
        cmp = compare_precision(net, NumericFormat.FP16, images)
        assert cmp.max_abs_error < 0.05
        assert cmp.top1_agreement >= 0.75

    def test_bf16_coarser_than_fp16(self, net, images):
        fp16 = compare_precision(net, NumericFormat.FP16, images)
        bf16 = compare_precision(net, NumericFormat.BF16, images)
        assert bf16.mean_abs_error >= fp16.mean_abs_error

    def test_fp32_format_is_exact(self, net, images):
        cmp = compare_precision(net, NumericFormat.FP32, images)
        assert cmp.max_abs_error == 0.0
        assert cmp.top1_agreement == 1.0

    def test_fp16_training_still_converges(self):
        """Low-precision robustness: SGD at FP16 storage still learns
        the synthetic task (the approximate-computing observation of
        Sec 1 / Fig 2)."""
        net = tiny_mlp(num_classes=3, in_features=10, hidden=16)
        model = ReducedPrecisionModel(net, NumericFormat.FP16, seed=4)
        x, y = make_synthetic_dataset(net, samples=60, num_classes=3,
                                      seed=5)
        trainer = SGDTrainer(model, learning_rate=0.1, batch_size=10)
        first = trainer.train_epoch(x, y, 0)
        for epoch in range(1, 5):
            last = trainer.train_epoch(x, y, epoch)
        assert last.mean_loss < first.mean_loss
        assert last.accuracy > 0.85

    def test_weights_stay_quantized_after_updates(self):
        net = tiny_mlp(num_classes=2, in_features=4, hidden=4)
        model = ReducedPrecisionModel(net, NumericFormat.FP16, seed=0)
        img = np.random.default_rng(0).normal(
            0, 1, (4, 1, 1)
        ).astype(np.float32)
        model.forward(img)
        model.backward(1)
        model.apply_gradients(0.05)
        w = model.state["fc1"].weights
        np.testing.assert_array_equal(w, quantize(w, NumericFormat.FP16))

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigError):
            quantize(np.zeros(4), "fp8")  # type: ignore[arg-type]
