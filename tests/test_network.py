"""Unit tests for the network graph."""

import pytest

from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import (
    ConvSpec,
    FCSpec,
    FeatureShape,
    InputSpec,
    LayerKind,
    PoolSpec,
)
from repro.dnn.network import Network
from repro.errors import TopologyError


def chain_net():
    return Network(
        "chain",
        [
            InputSpec("input", FeatureShape(3, 16, 16)),
            ConvSpec("conv1", out_features=8, kernel=3, pad=1),
            PoolSpec("pool1", window=2),
            FCSpec("fc1", out_features=10),
        ],
    )


class TestConstruction:
    def test_implicit_chaining(self):
        net = chain_net()
        assert net["conv1"].input_names == ("input",)
        assert net["pool1"].input_names == ("conv1",)
        assert net["fc1"].input_names == ("pool1",)

    def test_shapes_flow(self):
        net = chain_net()
        assert net["conv1"].output_shape == FeatureShape(8, 16, 16)
        assert net["pool1"].output_shape == FeatureShape(8, 8, 8)
        assert net["fc1"].output_shape == FeatureShape(10, 1, 1)

    def test_explicit_wiring(self):
        net = Network(
            "wired",
            [
                InputSpec("input", FeatureShape(3, 8, 8)),
                ConvSpec("a", out_features=4, kernel=3, pad=1),
                ConvSpec("b", out_features=4, kernel=3, pad=1),
            ],
            wiring={"b": ["input"]},
        )
        assert net["b"].input_names == ("input",)

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            Network("empty", [])

    def test_duplicate_name_rejected(self):
        with pytest.raises(TopologyError):
            Network(
                "dup",
                [
                    InputSpec("input", FeatureShape(1, 4, 4)),
                    ConvSpec("x", out_features=2, kernel=3, pad=1),
                    ConvSpec("x", out_features=2, kernel=3, pad=1),
                ],
            )

    def test_forward_reference_rejected(self):
        with pytest.raises(TopologyError):
            Network(
                "fwd",
                [
                    InputSpec("input", FeatureShape(1, 4, 4)),
                    ConvSpec("a", out_features=2, kernel=3, pad=1),
                ],
                wiring={"a": ["later"]},
            )

    def test_unknown_wiring_rejected(self):
        with pytest.raises(TopologyError):
            Network(
                "bad",
                [InputSpec("input", FeatureShape(1, 4, 4))],
                wiring={"ghost": ["input"]},
            )

    def test_first_layer_must_be_input(self):
        with pytest.raises(TopologyError):
            Network("noin", [ConvSpec("c", out_features=2, kernel=3)])


class TestAccessors:
    def test_getitem_unknown(self):
        with pytest.raises(TopologyError):
            chain_net()["missing"]

    def test_iteration_order(self):
        names = [n.name for n in chain_net()]
        assert names == ["input", "conv1", "pool1", "fc1"]

    def test_input_output(self):
        net = chain_net()
        assert net.input.name == "input"
        assert net.output.name == "fc1"
        assert len(net) == 4

    def test_consumers(self):
        net = chain_net()
        assert net.consumers("conv1") == ("pool1",)
        assert net.consumers("fc1") == ()

    def test_layers_of_kind(self):
        net = chain_net()
        convs = net.layers_of_kind(LayerKind.CONV)
        assert [n.name for n in convs] == ["conv1"]
        both = net.layers_of_kind(LayerKind.CONV, LayerKind.FC)
        assert len(both) == 2


class TestStatistics:
    def test_neuron_count_counts_conv_and_fc(self):
        net = chain_net()
        assert net.neuron_count == 8 * 16 * 16 + 10

    def test_weight_count(self):
        net = chain_net()
        conv_w = 8 * 3 * 9 + 8
        fc_w = 8 * 8 * 8 * 10 + 10
        assert net.weight_count == conv_w + fc_w

    def test_connection_count_is_macs(self):
        net = chain_net()
        conv_macs = 8 * 16 * 16 * 3 * 9
        fc_macs = 8 * 8 * 8 * 10
        assert net.connection_count == conv_macs + fc_macs

    def test_describe_mentions_every_layer(self):
        text = chain_net().describe()
        for name in ("input", "conv1", "pool1", "fc1", "totals"):
            assert name in text

    def test_layer_counts(self):
        counts = chain_net().layer_counts()
        assert counts[LayerKind.CONV] == 1
        assert counts[LayerKind.SAMP] == 1
        assert counts[LayerKind.FC] == 1


class TestBranching:
    def test_dag_with_builder(self):
        b = NetworkBuilder("dag")
        b.input(3, 8)
        trunk = b.conv(4, kernel=3, pad=1)
        left = b.conv(2, kernel=1, inputs=[trunk])
        right = b.conv(6, kernel=3, pad=1, inputs=[trunk])
        join = b.concat([left, right])
        net = b.build()
        assert net[join].output_shape.count == 8
        assert set(net.consumers(trunk)) == {left, right}

    def test_residual_add(self):
        b = NetworkBuilder("res")
        b.input(4, 8)
        trunk = b.cursor
        conv = b.conv(4, kernel=3, pad=1)
        out = b.add([conv, trunk])
        net = b.build()
        assert net[out].output_shape == net[trunk].output_shape
