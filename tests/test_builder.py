"""Unit tests for the network builder."""

import pytest

from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation, LayerKind, PoolMode
from repro.errors import TopologyError


class TestChaining:
    def test_cursor_follows_additions(self):
        b = NetworkBuilder("t")
        assert b.input(3, 8) == "input"
        assert b.cursor == "input"
        name = b.conv(4, kernel=3, pad=1)
        assert b.cursor == name

    def test_empty_cursor_raises(self):
        with pytest.raises(TopologyError):
            NetworkBuilder("t").cursor

    def test_auto_names_increment(self):
        b = NetworkBuilder("t")
        b.input(3, 8)
        first = b.conv(4, kernel=3, pad=1)
        second = b.conv(4, kernel=3, pad=1)
        assert (first, second) == ("conv1", "conv2")

    def test_duplicate_explicit_name(self):
        b = NetworkBuilder("t")
        b.input(3, 8)
        b.conv(4, kernel=3, pad=1, name="x")
        with pytest.raises(TopologyError):
            b.conv(4, kernel=3, pad=1, name="x")

    def test_same_pad(self):
        b = NetworkBuilder("t")
        b.input(3, 9)
        b.conv(4, kernel=5, same_pad=True)
        net = b.build()
        assert net["conv1"].output_shape.height == 9


class TestLayerKinds:
    def test_all_layer_types(self):
        b = NetworkBuilder("t")
        b.input(3, 16)
        c = b.conv(8, kernel=3, pad=1)
        p = b.pool(2, mode=PoolMode.AVG)
        g = b.global_pool()
        f = b.fc(10, activation=Activation.SOFTMAX)
        net = b.build()
        assert net[c].kind is LayerKind.CONV
        assert net[p].kind is LayerKind.SAMP
        assert net[g].kind is LayerKind.SAMP
        assert net[f].kind is LayerKind.FC

    def test_rectangular_input(self):
        b = NetworkBuilder("t")
        b.input(1, 4, 6)
        net = b.build()
        shape = net.input.output_shape
        assert (shape.height, shape.width) == (4, 6)

    def test_pool_default_stride(self):
        b = NetworkBuilder("t")
        b.input(1, 8)
        b.pool(2)
        net = b.build()
        assert net["pool1"].output_shape.height == 4
