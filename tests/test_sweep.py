"""Tests for the content-keyed compile cache and the parallel sweep
runner: digest stability/sensitivity, artifact identity, disk layer,
serial/parallel bit-identity and the warm-run zero-compile guarantee."""

import dataclasses
import json

import pytest

from repro.arch.presets import load_preset, single_precision_node
from repro.bench import clear_caches
from repro.bench import runner as bench_runner
from repro.bench.export import write_sweep_csv, write_sweep_json
from repro.compiler.fingerprint import compile_digest, network_fingerprint
from repro.dnn.zoo.tiny import tiny_cnn, tiny_mlp
from repro.errors import ConfigError
from repro.sweep import (
    CompileCache,
    SweepJob,
    cached_mapping,
    cached_simulation,
    expand_jobs,
    get_cache,
    run_sweep,
    set_cache,
    simulation_digest,
)
from repro.telemetry.core import capture

TINY = ("TinyCNN", "TinyMLP")


@pytest.fixture(autouse=True)
def fresh_cache():
    """Give every test its own memory-only cache and restore after."""
    previous = set_cache(CompileCache())
    yield
    set_cache(previous)


@pytest.fixture(scope="module")
def node():
    return single_precision_node()


class TestDigest:
    def test_rebuilt_inputs_same_digest(self, node):
        assert compile_digest(tiny_cnn(), node) == compile_digest(
            tiny_cnn(), single_precision_node()
        )

    def test_layer_shape_changes_digest(self, node):
        base = compile_digest(tiny_cnn(), node)
        assert compile_digest(tiny_cnn(num_classes=11), node) != base
        assert compile_digest(tiny_cnn(in_size=32), node) != base
        assert compile_digest(tiny_cnn(in_features=1), node) != base

    def test_network_display_name_ignored(self):
        from repro.dnn.network import Network

        net = tiny_mlp()
        renamed = Network(
            "SomethingElse",
            [node.spec for node in net.nodes],
            {
                node.name: node.input_names
                for node in net.nodes
                if node.input_names
            },
        )
        assert network_fingerprint(net) == network_fingerprint(renamed)

    def test_preset_field_changes_digest(self, node):
        net = tiny_mlp()
        base = compile_digest(net, node)
        tweaked = dataclasses.replace(node, ring_bandwidth=1e9)
        assert compile_digest(net, tweaked) != base

    def test_node_name_ignored(self, node):
        net = tiny_mlp()
        renamed = dataclasses.replace(node, name="custom-node")
        assert compile_digest(net, renamed) == compile_digest(net, node)

    def test_compiler_version_changes_digest(self, node, monkeypatch):
        net = tiny_mlp()
        base = compile_digest(net, node)
        monkeypatch.setattr(
            "repro.compiler.fingerprint.COMPILER_VERSION", "999-test"
        )
        assert compile_digest(net, node) != base

    def test_artifact_kind_and_extras_change_digest(self, node):
        net = tiny_mlp()
        assert compile_digest(net, node, artifact="mapping") != \
            compile_digest(net, node, artifact="simulation")
        assert simulation_digest(net, node, 256) != \
            simulation_digest(net, node, 128)


class TestCompileCache:
    def test_same_digest_identical_artifact(self, node):
        net = tiny_cnn()
        first = cached_mapping(net, node)
        second = cached_mapping(tiny_cnn(), single_precision_node())
        assert first is second  # memory layer returns the same object

    def test_simulation_cached(self, node):
        net = tiny_mlp()
        assert cached_simulation(net, node) is cached_simulation(net, node)
        stats = get_cache().stats
        assert stats["simulation_hits"] == 1
        assert stats["simulation_misses"] == 1

    def test_disk_round_trip(self, tmp_path, node):
        net = tiny_cnn()
        warm = CompileCache(tmp_path)
        built = cached_mapping(net, node, cache=warm)
        files = list(tmp_path.glob("mapping/*.pkl"))
        assert len(files) == 1
        # A fresh cache over the same directory serves from disk: the
        # build callable must never run.
        cold = CompileCache(tmp_path)
        digest = compile_digest(net, node, artifact="mapping")

        def explode():
            raise AssertionError("cache miss despite disk entry")

        loaded = cold.get("mapping", digest, explode)
        assert cold.stats == {"mapping_hits": 1}
        assert loaded.conv_columns_per_copy == built.conv_columns_per_copy
        assert [a.columns for a in loaded.conv_allocations.values()] == [
            a.columns for a in built.conv_allocations.values()
        ]

    def test_clear_drops_memory_and_disk(self, tmp_path, node):
        cache = CompileCache(tmp_path)
        set_cache(cache)
        cached_mapping(tiny_cnn(), node)
        assert len(cache) == 1
        assert cache.clear() == 2  # one memory entry + one disk entry
        assert len(cache) == 0
        assert not list(tmp_path.glob("*/*.pkl"))

    def test_bench_clear_caches_covers_shared_cache(self, node):
        first = bench_runner.cached_mapping("tiny")
        assert bench_runner.cached_mapping("tiny") is first
        clear_caches()
        assert bench_runner.cached_mapping("tiny") is not first

    def test_bench_runner_spelling_insensitive(self):
        # "alexnet" and "AlexNet" hash to the same topology digest.
        assert bench_runner.cached_mapping("tiny") is \
            bench_runner.cached_mapping("TinyCNN")


class TestExpandJobs:
    def test_defaults_cover_fig15_suite(self):
        jobs = expand_jobs()
        assert len(jobs) == 11
        assert jobs[0] == SweepJob("AlexNet", "sp", 256)

    def test_grid_order(self):
        jobs = expand_jobs(TINY, presets=("sp", "hp"), minibatches=(64,))
        assert [(j.network, j.preset) for j in jobs] == [
            ("TinyCNN", "sp"), ("TinyCNN", "hp"),
            ("TinyMLP", "sp"), ("TinyMLP", "hp"),
        ]

    def test_unknown_network_raises_before_work(self):
        with pytest.raises(KeyError, match="unknown network"):
            expand_jobs(["nope"])

    def test_unknown_preset_raises_before_work(self):
        with pytest.raises(ConfigError, match="unknown chip preset"):
            expand_jobs(TINY, presets=("fp8",))

    def test_preset_factories_agree_with_bench(self):
        assert load_preset("sp").name == single_precision_node().name


class TestRunSweep:
    def test_serial_results(self):
        report = run_sweep(expand_jobs(TINY), workers=1)
        assert [r.network for r in report.results] == list(TINY)
        assert all(r.train_images_per_s > 0 for r in report.results)
        assert report.cache_misses > 0 and report.cache_hits == 0

    def test_parallel_bit_identical_to_serial(self):
        jobs = expand_jobs(TINY, presets=("sp", "hp"))
        serial = run_sweep(jobs, workers=1)
        set_cache(CompileCache())  # cold cache for the parallel run
        parallel = run_sweep(jobs, workers=2)
        assert [r.to_row() for r in serial.results] == [
            r.to_row() for r in parallel.results
        ]

    def test_warm_rerun_answers_from_cache_without_compiling(self):
        jobs = expand_jobs(TINY)
        run_sweep(jobs, workers=2)  # cold: workers warm the parent cache
        with capture() as tel:
            warm = run_sweep(jobs, workers=2)
        assert all(r.cache_hit for r in warm.results)
        assert warm.cache_misses == 0
        # Zero STEP1-6 work: no compiler-category telemetry at all.
        assert tel.events_in("compiler") == []
        counters = {
            (g, n): v for g, n, v in tel.counters.rows() if g == "cache"
        }
        assert counters == {
            ("cache", "simulation_hits"): float(len(jobs))
        }

    def test_no_cache_bypasses_cache(self):
        report = run_sweep(expand_jobs(["TinyMLP"]), use_cache=False)
        assert report.cache_stats == {}
        assert len(get_cache()) == 0
        assert not report.results[0].cache_hit

    def test_sweep_emits_job_spans(self):
        jobs = expand_jobs(TINY)
        with capture() as tel:
            run_sweep(jobs, workers=1)
        spans = tel.events_in("sweep.job")
        assert [s.name for s in spans] == [j.label for j in jobs]

    def test_disk_cache_dir_spans_processes(self, tmp_path):
        jobs = expand_jobs(TINY)
        run_sweep(jobs, workers=2, cache_dir=str(tmp_path))
        assert list(tmp_path.glob("simulation/*.pkl"))
        # A brand-new process-global cache over the same directory hits.
        set_cache(None)
        warm = run_sweep(jobs, workers=1, cache_dir=str(tmp_path))
        assert all(r.cache_hit for r in warm.results)


class TestSweepExport:
    def test_json_and_csv_round_trip(self, tmp_path):
        report = run_sweep(expand_jobs(["TinyMLP"]))
        jpath = write_sweep_json(report.results, tmp_path / "s.json")
        cpath = write_sweep_csv(report.results, tmp_path / "s.csv")
        rows = json.loads(jpath.read_text())
        assert rows == [r.to_row() for r in report.results]
        header = cpath.read_text().splitlines()[0].split(",")
        assert tuple(header) == type(report.results[0]).EXPORT_FIELDS
        assert "cache_hit" not in header

    def test_export_files_identical_across_worker_counts(self, tmp_path):
        jobs = expand_jobs(TINY)
        serial = run_sweep(jobs, workers=1)
        set_cache(CompileCache())
        parallel = run_sweep(jobs, workers=2)
        a = write_sweep_json(serial.results, tmp_path / "a.json")
        b = write_sweep_json(parallel.results, tmp_path / "b.json")
        assert a.read_bytes() == b.read_bytes()


class TestSweepCli:
    def test_cli_sweep_writes_results(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "sweep.json"
        assert main([
            "sweep", "tiny", "--workers", "2", "--out", str(out),
        ]) == 0
        rows = json.loads(out.read_text())
        assert rows and rows[0]["network"] == "TinyCNN"
        assert "cache:" in capsys.readouterr().out

    def test_cli_unknown_network_exits_2(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["sweep", "nope", "--out", str(tmp_path / "x.json")])
        assert exc.value.code == 2
