"""Tests for the nested-pipeline schedule (Fig 10)."""

import pytest

from repro.arch import single_precision_node
from repro.compiler import map_network
from repro.dnn import zoo
from repro.errors import SimulationError
from repro.sim.timeline import (
    PipelineStage,
    nested_pipeline,
    pipeline_stages,
    schedule,
)


@pytest.fixture(scope="module")
def alexnet_mapping():
    return map_network(zoo.alexnet(), single_precision_node())


class TestSchedule:
    def test_pipeline_recurrence(self):
        stages = [PipelineStage("a", 10), PipelineStage("b", 5)]
        tl = schedule(stages, images=3)
        # Image 0 flows straight through.
        assert tl.start[0] == (0.0, 10.0)
        # Image 1 waits for stage a to free up.
        assert tl.start[1][0] == 10.0
        # Stage b is never the constraint (shorter than a).
        assert tl.finish[2][1] == 35.0
        assert tl.initiation_interval == pytest.approx(10.0)

    def test_bottleneck_sets_steady_state(self):
        stages = [PipelineStage(f"s{i}", c) for i, c in
                  enumerate((3, 9, 4, 2))]
        tl = schedule(stages, images=16)
        assert tl.initiation_interval == pytest.approx(9.0)
        assert tl.bottleneck.cycles == 9

    def test_makespan_decomposition(self):
        """makespan == fill latency + (N-1) * initiation interval once
        the bottleneck dominates."""
        stages = [PipelineStage("a", 2), PipelineStage("big", 10),
                  PipelineStage("c", 1)]
        tl = schedule(stages, images=12)
        assert tl.makespan == pytest.approx(
            tl.fill_latency + (tl.images - 1) * 10.0
        )

    def test_bottleneck_occupancy_near_one(self):
        stages = [PipelineStage("a", 1), PipelineStage("hot", 8),
                  PipelineStage("c", 2)]
        tl = schedule(stages, images=32)
        assert tl.occupancy(1) > 0.9
        assert tl.occupancy(0) < 0.2

    def test_pipeline_speedup(self):
        stages = [PipelineStage(f"s{i}", 5.0) for i in range(4)]
        tl = schedule(stages, images=32)
        # Balanced 4-stage pipeline approaches 4x over serial.
        assert 3.0 < tl.speedup_vs_serial() <= 4.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            schedule([], images=4)
        with pytest.raises(SimulationError):
            schedule([PipelineStage("a", 1)], images=0)

    def test_render(self):
        stages = [PipelineStage("alpha", 4), PipelineStage("beta", 4)]
        text = schedule(stages, images=3).render(width=24)
        assert "alpha" in text and "beta" in text and "II" in text


class TestMappedPipeline:
    def test_training_depth_doubles(self, alexnet_mapping):
        fp_only = pipeline_stages(alexnet_mapping, training=False)
        full = pipeline_stages(alexnet_mapping, training=True)
        assert len(full) == 2 * len(fp_only)

    def test_stage_order_forward_then_reverse(self, alexnet_mapping):
        names = [s.name for s in pipeline_stages(alexnet_mapping)]
        assert names[0] == "conv1/fp"
        assert names[len(names) // 2 - 1] == "fc8/fp"
        assert names[len(names) // 2] == "fc8/bp+wg"
        assert names[-1] == "conv1/bp+wg"

    def test_steady_state_matches_bottleneck(self, alexnet_mapping):
        tl = nested_pipeline(alexnet_mapping, images=12)
        assert tl.initiation_interval == pytest.approx(
            tl.bottleneck.cycles, rel=1e-6
        )

    def test_pipelining_beats_serial_execution(self, alexnet_mapping):
        tl = nested_pipeline(alexnet_mapping, images=16)
        assert tl.speedup_vs_serial() > 3.0
