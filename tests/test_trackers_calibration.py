"""Tests for the static access analysis and tracker calibration pass."""

import pytest

from repro.compiler.codegen import compile_forward
from repro.compiler.codegen_training import compile_training
from repro.compiler.trackers import (
    audit_trackers,
    calibrate_trackers,
    instruction_accesses,
)
from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation, PoolMode
from repro.dnn.zoo import tiny_cnn, tiny_mlp
from repro.errors import ProgramError
from repro.functional import ReferenceModel
from repro.isa import Opcode, Program, make
from repro.sim.machine import pack_shape


class TestInstructionAccesses:
    def test_scalar_instructions_access_nothing(self):
        reads, writes = instruction_accesses(
            make(Opcode.LDRI, rd=1, value=7)
        )
        assert reads == [] and writes == []

    def test_dma(self):
        instr = make(Opcode.DMALOAD, src_addr=4, src_port=0, dst_addr=8,
                     dst_port=1, size=16, is_accum=0)
        reads, writes = instruction_accesses(instr)
        assert reads == [(0, 4, 16)]
        assert writes == [(1, 8, 16)]

    def test_ndconv_output_extent(self):
        instr = make(
            Opcode.NDCONV, in_addr=0, in_port=0,
            in_size=pack_shape(8, 8), kernel_addr=64,
            kernel_size=pack_shape(3, 3), stride=1, pad=1,
            out_addr=0, out_port=1, is_accum=0,
        )
        reads, writes = instruction_accesses(instr)
        assert (0, 0, 64) in reads  # input feature
        assert (0, 64, 9) in reads  # kernel
        assert writes == [(1, 0, 64)]  # same-size output (pad=1)

    def test_matmul(self):
        instr = make(
            Opcode.MATMUL, in1_addr=0, in1_port=0,
            in1_size=pack_shape(1, 12), in2_addr=16, in2_port=0,
            in2_size=pack_shape(5, 12), out_addr=0, out_port=1,
            is_accum=0,
        )
        reads, writes = instruction_accesses(instr)
        assert (0, 0, 12) in reads
        assert (0, 16, 60) in reads
        assert writes == [(1, 0, 5)]

    def test_engine_and_analysis_agree(self):
        """The engine gates exactly the accesses the calibrator counts —
        they share the same function, so a compiled program that runs to
        completion must audit cleanly (checked below), and vice versa."""
        from repro.sim import machine as machine_mod

        assert hasattr(machine_mod, "instruction_accesses")


class TestCalibration:
    def _toy_programs(self):
        """A producer/consumer pair with placeholder tracker counts."""
        producer = Program(tile="producer")
        producer.append(make(
            Opcode.MEMTRACK, addr=0, port=1, size=4,
            num_updates=0, num_reads=0, comment="placeholder",
        ))
        producer.append(make(
            Opcode.DMALOAD, src_addr=0, src_port=0, dst_addr=0,
            dst_port=1, size=4, is_accum=0,
        ))
        producer.append(make(Opcode.HALT))
        consumer = Program(tile="consumer")
        consumer.append(make(
            Opcode.DMALOAD, src_addr=0, src_port=1, dst_addr=0,
            dst_port=2, size=4, is_accum=0,
        ))
        consumer.append(make(
            Opcode.NDACCUM, src_addr=0, port=1, size=4, dst_addr=16,
        ))
        consumer.append(make(Opcode.HALT))
        return producer, consumer

    def test_counts_filled_in(self):
        producer, consumer = self._toy_programs()
        n = calibrate_trackers([producer, consumer])
        assert n == 1
        tracker = producer[0]
        assert tracker.operand("num_updates") == 1  # one DMA write
        assert tracker.operand("num_reads") == 2  # DMA read + NDACCUM read

    def test_dead_tracker_rejected(self):
        prog = Program(tile="dead")
        prog.append(make(
            Opcode.MEMTRACK, addr=100, port=0, size=4,
            num_updates=0, num_reads=0,
        ))
        prog.append(make(Opcode.HALT))
        with pytest.raises(ProgramError, match="dead tracker"):
            calibrate_trackers([prog])

    def test_overlapping_trackers_rejected(self):
        prog = Program(tile="overlap")
        for addr in (0, 2):
            prog.append(make(
                Opcode.MEMTRACK, addr=addr, port=0, size=4,
                num_updates=1, num_reads=1,
            ))
        prog.append(make(Opcode.HALT))
        with pytest.raises(ProgramError, match="overlapping"):
            calibrate_trackers([prog])

    def test_external_accesses(self):
        prog = Program(tile="inject")
        prog.append(make(
            Opcode.MEMTRACK, addr=0, port=0, size=4,
            num_updates=0, num_reads=0,
        ))
        prog.append(make(
            Opcode.DMALOAD, src_addr=0, src_port=0, dst_addr=0,
            dst_port=1, size=4, is_accum=0,
        ))
        prog.append(make(Opcode.HALT))
        calibrate_trackers([prog], external_updates={(0, 0): 1})
        assert prog[0].operand("num_updates") == 1
        assert prog[0].operand("num_reads") == 1


class TestCompilerAudits:
    """The hand-emitted tracker counts of both compilers match the
    static analysis exactly — the strongest internal consistency check
    the synchronization scheme admits."""

    @pytest.mark.parametrize("rows", [1, 2, 3])
    def test_forward_compiler_counts_exact(self, rows):
        net = tiny_cnn(num_classes=5, in_size=12)
        model = ReferenceModel(net, seed=3)
        compiled = compile_forward(net, model, rows=rows)
        audit = audit_trackers(compiled.programs)
        assert audit["mismatches"] == 0
        assert audit["trackers"] > 10

    def test_mlp_forward_counts_exact(self):
        net = tiny_mlp(num_classes=4, in_features=6, hidden=9)
        model = ReferenceModel(net, seed=1)
        compiled = compile_forward(net, model, rows=2)
        assert audit_trackers(compiled.programs)["mismatches"] == 0

    def test_training_compiler_counts_exact(self):
        b = NetworkBuilder("TinyAvgCNN")
        b.input(2, 8)
        b.conv(4, kernel=3, pad=1, name="conv1")
        b.pool(2, mode=PoolMode.AVG, name="pool1")
        b.conv(6, kernel=3, pad=1, name="conv2")
        b.fc(3, activation=Activation.SOFTMAX, name="fc")
        net = b.build()
        model = ReferenceModel(net, seed=3)
        compiled = compile_training(net, model, rows=2)
        audit = audit_trackers(
            compiled.forward.programs,
            external_updates={
                (compiled.err_port, compiled.err_addr): 1
            },
        )
        assert audit["mismatches"] == 0
        assert audit["trackers"] > 20
